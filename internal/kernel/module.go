package kernel

import (
	"crypto/ed25519"
	"fmt"

	"veil/internal/snp"
	"veil/internal/vmod"
)

// Module-lifecycle cost model (workload constants, not architectural ones).
// Calibrated against CS1: loading the paper's 4728-byte test module costs
// ~960k cycles natively and unloading ~1.31M, so the ~55k-cycle VeilS-Kci
// delta lands at +5.7% (load) and +4.2% (unload).
const (
	CyclesModuleLoadBase   = 960_000
	CyclesModuleUnloadBase = 1_310_000
	// CyclesSigVerify models the module signature check, charged on
	// whichever side verifies (in-kernel natively, VeilS-Kci under Veil).
	CyclesSigVerify = 30_000
)

// LoadedModule is the kernel's record of an installed module.
type LoadedModule struct {
	ID     int
	Name   string
	Frames []uint64 // all installed frames, text first
	Text   int      // number of text frames (prefix of Frames)
	Size   int      // installed byte footprint
	// veilHandle is the VeilS-Kci handle when loaded through the hook.
	veilHandle int
	behavior   func(k *Kernel) error
}

// ModuleManager implements load_module/free_module. Natively the kernel
// verifies and installs modules itself; under Veil both routines are hooked
// to VeilS-Kci (§7), with only memory allocation left to the kernel (§6.1).
type ModuleManager struct {
	k         *Kernel
	nextID    int
	loaded    map[int]*LoadedModule
	key       ed25519.PublicKey
	symtab    map[string]uint64
	behaviors map[string]func(k *Kernel) error
}

// NewModuleManager creates the manager with an empty trusted key.
func NewModuleManager(k *Kernel) *ModuleManager {
	m := &ModuleManager{
		k:         k,
		nextID:    1,
		loaded:    make(map[int]*LoadedModule),
		symtab:    map[string]uint64{},
		behaviors: map[string]func(k *Kernel) error{},
	}
	// A few "kernel exports" for relocation targets. The addresses are
	// stable tokens; what matters is that relocation resolves against a
	// table the attacker cannot rewrite (VeilS-Kci keeps its own copy).
	m.symtab["printk"] = 0xffffffff81000100
	m.symtab["kmalloc"] = 0xffffffff81000200
	m.symtab["register_chrdev"] = 0xffffffff81000300
	m.symtab["audit_log_end"] = 0xffffffff81000400
	return m
}

// SetSigningKey installs the module verification key (from the boot image).
func (mm *ModuleManager) SetSigningKey(pub ed25519.PublicKey) { mm.key = pub }

// SymbolTable exposes the kernel export table (VeilS-Kci snapshots it into
// protected memory at boot).
func (mm *ModuleManager) SymbolTable() map[string]uint64 { return mm.symtab }

// RegisterBehavior binds the simulated payload that "runs" when a module
// with the given name is executed.
func (mm *ModuleManager) RegisterBehavior(name string, fn func(k *Kernel) error) {
	mm.behaviors[name] = fn
}

// Load installs a signed module image (load_module). Memory allocation is
// done here in the kernel; everything else — verification, copying,
// relocation, write-protection — happens in VeilS-Kci when hooked (§6.1),
// avoiding the TOCTOU window of verify-then-let-the-kernel-install.
func (mm *ModuleManager) Load(image []byte) (*LoadedModule, error) {
	k := mm.k
	k.m.Clock().Charge(snp.CostCompute, CyclesModuleLoadBase)
	parsed, err := vmod.Parse(image)
	if err != nil {
		return nil, err
	}
	pages := parsed.InstalledSize() / snp.PageSize
	frames := make([]uint64, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := k.AllocFrame()
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	lm := &LoadedModule{
		ID:       mm.nextID,
		Name:     parsed.Name,
		Frames:   frames,
		Text:     parsed.TextPages(),
		Size:     parsed.InstalledSize(),
		behavior: mm.behaviors[parsed.Name],
	}

	if h := k.cfg.Hooks; h != nil {
		handle, err := h.LoadModule(image, frames)
		if err != nil {
			mm.freeFrames(frames)
			return nil, err
		}
		lm.veilHandle = handle
	} else {
		// Native path: in-kernel verification and installation. The text
		// is left writable in hardware terms — native W⊕X relies on page
		// tables the attacker can flip, which is the gap VeilS-Kci closes.
		if mm.key == nil {
			mm.freeFrames(frames)
			return nil, fmt.Errorf("kernel: no module signing key")
		}
		k.m.Clock().Charge(snp.CostCompute, CyclesSigVerify)
		if err := vmod.Verify(mm.key, image); err != nil {
			mm.freeFrames(frames)
			return nil, err
		}
		text := append([]byte(nil), parsed.Text...)
		if err := vmod.Relocate(text, parsed.Relocs, mm.symtab); err != nil {
			mm.freeFrames(frames)
			return nil, err
		}
		if err := mm.installSections(frames, parsed, text); err != nil {
			mm.freeFrames(frames)
			return nil, err
		}
	}
	mm.nextID++
	mm.loaded[lm.ID] = lm
	return lm, nil
}

// installSections copies text then data into the allocated frames through
// the kernel direct map (charging the copies).
func (mm *ModuleManager) installSections(frames []uint64, m *vmod.Module, text []byte) error {
	k := mm.k
	writeChunks := func(startFrame int, data []byte) error {
		for off := 0; off < len(data); off += snp.PageSize {
			end := off + snp.PageSize
			if end > len(data) {
				end = len(data)
			}
			if err := k.WritePhys(frames[startFrame+off/snp.PageSize], data[off:end]); err != nil {
				return err
			}
			k.chargeCopy(end - off)
		}
		return nil
	}
	if err := writeChunks(0, text); err != nil {
		return err
	}
	return writeChunks(m.TextPages(), m.Data)
}

func (mm *ModuleManager) freeFrames(frames []uint64) {
	for _, f := range frames {
		_ = mm.k.FreeFrame(f)
	}
}

// Exec runs the module's simulated payload after the hardware execute check
// on its text frames — this is where a corrupted text page is caught.
func (mm *ModuleManager) Exec(id int) error {
	lm, ok := mm.loaded[id]
	if !ok {
		return fmt.Errorf("kernel: no module %d", id)
	}
	for i := 0; i < lm.Text; i++ {
		if err := mm.k.m.GuestExecCheckPhys(mm.k.cfg.VMPL, snp.CPL0, lm.Frames[i]); err != nil {
			return err
		}
	}
	if lm.behavior != nil {
		return lm.behavior(mm.k)
	}
	return nil
}

// Unload removes a module (free_module), lifting VeilS-Kci protection
// first when hooked.
func (mm *ModuleManager) Unload(id int) error {
	lm, ok := mm.loaded[id]
	if !ok {
		return fmt.Errorf("kernel: no module %d", id)
	}
	mm.k.m.Clock().Charge(snp.CostCompute, CyclesModuleUnloadBase)
	if h := mm.k.cfg.Hooks; h != nil {
		if err := h.FreeModule(lm.veilHandle); err != nil {
			return err
		}
	}
	mm.freeFrames(lm.Frames)
	delete(mm.loaded, id)
	return nil
}

// VeilHandle returns the VeilS-Kci handle for a module loaded through the
// hook (zero for native loads).
func (lm *LoadedModule) VeilHandle() int { return lm.veilHandle }

// Loaded returns a module record.
func (mm *ModuleManager) Loaded(id int) (*LoadedModule, bool) {
	lm, ok := mm.loaded[id]
	return lm, ok
}
