package kernel

import (
	"fmt"

	"veil/internal/obs"
	"veil/internal/snp"
)

// SysNo is a syscall number (Linux x86_64 numbering for the implemented
// subset, so audit rulesets read like the paper's auditctl configuration).
type SysNo int

// Implemented syscall numbers.
const (
	SysRead       SysNo = 0
	SysWrite      SysNo = 1
	SysOpen       SysNo = 2
	SysClose      SysNo = 3
	SysStat       SysNo = 4
	SysFstat      SysNo = 5
	SysLseek      SysNo = 8
	SysMmap       SysNo = 9
	SysMprotect   SysNo = 10
	SysMunmap     SysNo = 11
	SysBrk        SysNo = 12
	SysIoctl      SysNo = 16
	SysPread      SysNo = 17
	SysPwrite     SysNo = 18
	SysReadv      SysNo = 19
	SysWritev     SysNo = 20
	SysPipe       SysNo = 22
	SysSchedYield SysNo = 24
	SysDup        SysNo = 32
	SysDup2       SysNo = 33
	SysNanosleep  SysNo = 35
	SysGetpid     SysNo = 39
	SysSendfile   SysNo = 40
	SysSocket     SysNo = 41
	SysConnect    SysNo = 42
	SysAccept     SysNo = 43
	SysSendto     SysNo = 44
	SysRecvfrom   SysNo = 45
	SysSendmsg    SysNo = 46
	SysRecvmsg    SysNo = 47
	SysShutdown   SysNo = 48
	SysBind       SysNo = 49
	SysListen     SysNo = 50
	SysSocketpair SysNo = 53
	SysClone      SysNo = 56
	SysFork       SysNo = 57
	SysVfork      SysNo = 58
	SysExecve     SysNo = 59
	SysExit       SysNo = 60
	SysUname      SysNo = 63
	SysFcntl      SysNo = 72
	SysTruncate   SysNo = 76
	SysFtruncate  SysNo = 77
	SysGetdents   SysNo = 78
	SysGetcwd     SysNo = 79
	SysRename     SysNo = 82
	SysMkdir      SysNo = 83
	SysRmdir      SysNo = 84
	SysCreat      SysNo = 85
	SysLink       SysNo = 86
	SysUnlink     SysNo = 87
	SysSymlink    SysNo = 88
	SysChmod      SysNo = 90
	SysFchmod     SysNo = 91
	SysGettime    SysNo = 96
	SysGetuid     SysNo = 102
	SysSetuid     SysNo = 105
	SysSetreuid   SysNo = 113
	SysSetresuid  SysNo = 117
	SysMknod      SysNo = 133
	SysTruncate64 SysNo = 193 // unused alias slot kept for spec tests
	SysOpenat     SysNo = 257
	SysMkdirat    SysNo = 258
	SysMknodat    SysNo = 259
	SysUnlinkat   SysNo = 263
	SysSplice     SysNo = 275
	SysAccept4    SysNo = 288
	SysDup3       SysNo = 292
	SysPipe2      SysNo = 293
)

var sysNames = map[SysNo]string{
	SysRead: "read", SysWrite: "write", SysOpen: "open", SysClose: "close",
	SysStat: "stat", SysFstat: "fstat", SysLseek: "lseek", SysMmap: "mmap",
	SysMprotect: "mprotect", SysMunmap: "munmap", SysBrk: "brk",
	SysIoctl: "ioctl", SysPread: "pread64", SysPwrite: "pwrite64",
	SysReadv: "readv", SysWritev: "writev", SysPipe: "pipe",
	SysSchedYield: "sched_yield", SysDup: "dup", SysDup2: "dup2",
	SysNanosleep: "nanosleep", SysGetpid: "getpid", SysSendfile: "sendfile",
	SysSocket: "socket", SysConnect: "connect", SysAccept: "accept",
	SysSendto: "sendto", SysRecvfrom: "recvfrom", SysSendmsg: "sendmsg",
	SysRecvmsg: "recvmsg", SysShutdown: "shutdown", SysBind: "bind",
	SysListen: "listen", SysSocketpair: "socketpair", SysClone: "clone",
	SysFork: "fork", SysVfork: "vfork", SysExecve: "execve", SysExit: "exit",
	SysUname: "uname", SysFcntl: "fcntl", SysTruncate: "truncate",
	SysFtruncate: "ftruncate", SysGetdents: "getdents", SysGetcwd: "getcwd",
	SysRename: "rename", SysMkdir: "mkdir", SysRmdir: "rmdir",
	SysCreat: "creat", SysLink: "link", SysUnlink: "unlink",
	SysSymlink: "symlink", SysChmod: "chmod", SysFchmod: "fchmod",
	SysGettime: "gettimeofday", SysGetuid: "getuid", SysSetuid: "setuid",
	SysSetreuid: "setreuid", SysSetresuid: "setresuid", SysMknod: "mknod",
	SysOpenat: "openat", SysMkdirat: "mkdirat", SysMknodat: "mknodat",
	SysUnlinkat: "unlinkat", SysSplice: "splice", SysAccept4: "accept4",
	SysDup3: "dup3", SysPipe2: "pipe2",
}

// Name returns the syscall's Linux name.
func (n SysNo) Name() string {
	if s, ok := sysNames[n]; ok {
		return s
	}
	return fmt.Sprintf("sys_%d", int(n))
}

// IoctlHandler services ioctl requests for a named device node (the Veil
// enclave module registers one for /dev/veil-enclave, §7).
type IoctlHandler func(p *Process, req uint64, arg []byte) (uint64, error)

// RegisterDevice installs an ioctl handler for a /dev path, creating the
// node.
func (k *Kernel) RegisterDevice(path string, h IoctlHandler) error {
	if k.devices == nil {
		k.devices = make(map[string]IoctlHandler)
	}
	if _, err := k.vfs.Create(path, 0o600, false); err != nil {
		return err
	}
	k.devices[path] = h
	return nil
}

// sysFrame is one in-flight syscall: the causal span it opened, the
// syscall number and its start cycle, consumed by sysret.
type sysFrame struct {
	ref   obs.SpanRef
	n     SysNo
	start uint64
}

// enter is the common syscall prologue: entry cost, trace, causal span
// open, and — if the syscall matches the audit ruleset — record emission
// *before* the event runs (execute-ahead, §6.3). detail is built lazily.
// Every handler pairs it with `defer k.sysret()`, which records the
// syscall span and closes it; the pairing holds on the audit-refusal path
// too, because the handler's defer still runs.
func (k *Kernel) enter(p *Process, n SysNo, detail func() string) error {
	start := k.m.Clock().Cycles()
	k.m.Clock().Charge(snp.CostSyscall, snp.CyclesSyscall)
	k.chargeBase(n)
	ref := k.m.ObserveSyscallEnter(k.cfg.VMPL, uint64(n))
	k.sysStack = append(k.sysStack, sysFrame{ref: ref, n: n, start: start})
	if k.audit != nil && k.audit.Matches(n) {
		return k.audit.emitFor(p, n, detail())
	}
	return nil
}

// sysret is the common syscall epilogue, deferred by every handler that
// called enter: it pops the frame and records the syscall's causal span,
// with Dur covering prologue through return.
func (k *Kernel) sysret() {
	if len(k.sysStack) == 0 {
		return
	}
	fr := k.sysStack[len(k.sysStack)-1]
	k.sysStack = k.sysStack[:len(k.sysStack)-1]
	k.m.ObserveSyscallExit(k.cfg.VMPL, uint64(fr.n), fr.start, fr.ref)
}

// chargeCopy accounts a user↔kernel data copy of n bytes.
func (k *Kernel) chargeCopy(n int) {
	if n <= 0 {
		return
	}
	k.m.Clock().Charge(snp.CostPageCopy, uint64(n)*snp.CyclesPageCopy4K/snp.PageSize+1)
}

// --- file syscalls ---

// Open implements open(2).
func (k *Kernel) Open(p *Process, path string, flags int, mode uint32) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysOpen, func() string { return fmt.Sprintf("path=%q flags=%#x", path, flags) }); err != nil {
		return -1, err
	}
	var ino *Inode
	var err error
	if flags&OCreat != 0 {
		ino, err = k.vfs.Create(path, mode, flags&OExcl != 0)
	} else {
		ino, err = k.vfs.Lookup(path)
	}
	if err != nil {
		return -1, err
	}
	if ino.Dir && flags&0x3 != ORdonly {
		return -1, ErrIsDir
	}
	if flags&OTrunc != 0 && !ino.Dir {
		if err := ino.Truncate(0); err != nil {
			return -1, err
		}
	}
	f := &FD{Path: path, Flags: flags, ino: ino}
	if flags&OAppend != 0 {
		f.off = ino.Size()
	}
	return p.installFD(f), nil
}

// Openat implements openat(2) relative to the root (the model keeps a
// single namespace; dirfd is accepted for ruleset compatibility).
func (k *Kernel) Openat(p *Process, dirfd int, path string, flags int, mode uint32) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysOpenat, func() string { return fmt.Sprintf("dirfd=%d path=%q", dirfd, path) }); err != nil {
		return -1, err
	}
	// Reuse open semantics without double audit.
	return k.openNoAudit(p, path, flags, mode)
}

func (k *Kernel) openNoAudit(p *Process, path string, flags int, mode uint32) (int, error) {
	var ino *Inode
	var err error
	if flags&OCreat != 0 {
		ino, err = k.vfs.Create(path, mode, flags&OExcl != 0)
	} else {
		ino, err = k.vfs.Lookup(path)
	}
	if err != nil {
		return -1, err
	}
	if flags&OTrunc != 0 && !ino.Dir {
		if err := ino.Truncate(0); err != nil {
			return -1, err
		}
	}
	f := &FD{Path: path, Flags: flags, ino: ino}
	if flags&OAppend != 0 {
		f.off = ino.Size()
	}
	return p.installFD(f), nil
}

// Creat implements creat(2).
func (k *Kernel) Creat(p *Process, path string, mode uint32) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysCreat, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return -1, err
	}
	return k.openNoAudit(p, path, OCreat|OTrunc|OWronly, mode)
}

// Close implements close(2).
func (k *Kernel) Close(p *Process, fd int) error {
	defer k.sysret()
	if err := k.enter(p, SysClose, func() string { return fmt.Sprintf("fd=%d", fd) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok {
		return ErrBadFD
	}
	if f.sock != nil {
		k.net().close(f.sock)
	}
	if f.pipe != nil {
		f.pipe.closed = true
	}
	delete(p.fds, fd)
	return nil
}

// Read implements read(2).
func (k *Kernel) Read(p *Process, fd int, buf []byte) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysRead, func() string { return fmt.Sprintf("fd=%d len=%d", fd, len(buf)) }); err != nil {
		return -1, err
	}
	return k.readNoAudit(p, fd, buf)
}

func (k *Kernel) readNoAudit(p *Process, fd int, buf []byte) (int, error) {
	f, ok := p.fds[fd]
	if !ok {
		return -1, ErrBadFD
	}
	switch {
	case f.pipe != nil:
		if !f.pipe.readSide {
			return -1, ErrBadFD
		}
		if f.pipe.q.len() == 0 {
			if f.pipe.peer.closed {
				return 0, nil
			}
			return -1, ErrWouldBlock
		}
		n := f.pipe.q.read(buf)
		k.chargeCopy(n)
		return n, nil
	case f.sock != nil:
		n, err := f.sock.recv(buf)
		k.chargeCopy(n)
		return n, err
	case f.ino != nil:
		if !f.readable() {
			return -1, ErrBadFD
		}
		n := f.ino.ReadAt(buf, f.off)
		f.off += int64(n)
		k.chargeCopy(n)
		return n, nil
	}
	return -1, ErrBadFD
}

// Write implements write(2).
func (k *Kernel) Write(p *Process, fd int, buf []byte) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysWrite, func() string { return fmt.Sprintf("fd=%d len=%d", fd, len(buf)) }); err != nil {
		return -1, err
	}
	return k.writeNoAudit(p, fd, buf)
}

func (k *Kernel) writeNoAudit(p *Process, fd int, buf []byte) (int, error) {
	f, ok := p.fds[fd]
	if !ok {
		return -1, ErrBadFD
	}
	switch {
	case f.pipe != nil:
		if f.pipe.readSide {
			return -1, ErrBadFD
		}
		if f.pipe.peer.closed {
			return -1, ErrClosed
		}
		n := f.pipe.q.write(buf)
		k.chargeCopy(n)
		return n, nil
	case f.sock != nil:
		n, err := f.sock.send(buf)
		k.chargeCopy(n)
		return n, err
	case f.ino != nil:
		if !f.writable() {
			return -1, ErrBadFD
		}
		if f.Flags&OAppend != 0 {
			f.off = f.ino.Size()
		}
		n := f.ino.WriteAt(buf, f.off)
		f.off += int64(n)
		k.chargeCopy(n)
		return n, nil
	}
	return -1, ErrBadFD
}

// Pread implements pread64(2).
func (k *Kernel) Pread(p *Process, fd int, buf []byte, off int64) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysPread, func() string { return fmt.Sprintf("fd=%d len=%d off=%d", fd, len(buf), off) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil || !f.readable() {
		return -1, ErrBadFD
	}
	n := f.ino.ReadAt(buf, off)
	k.chargeCopy(n)
	return n, nil
}

// Pwrite implements pwrite64(2).
func (k *Kernel) Pwrite(p *Process, fd int, buf []byte, off int64) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysPwrite, func() string { return fmt.Sprintf("fd=%d len=%d off=%d", fd, len(buf), off) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil || !f.writable() {
		return -1, ErrBadFD
	}
	n := f.ino.WriteAt(buf, off)
	k.chargeCopy(n)
	return n, nil
}

// Lseek implements lseek(2).
func (k *Kernel) Lseek(p *Process, fd int, off int64, whence int) (int64, error) {
	defer k.sysret()
	if err := k.enter(p, SysLseek, func() string { return fmt.Sprintf("fd=%d off=%d whence=%d", fd, off, whence) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil {
		return -1, ErrBadFD
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.off
	case SeekEnd:
		base = f.ino.Size()
	default:
		return -1, ErrInval
	}
	if base+off < 0 {
		return -1, ErrInval
	}
	f.off = base + off
	return f.off, nil
}

// FileInfo is the stat result.
type FileInfo struct {
	Size  int64
	Mode  uint32
	Dir   bool
	Nlink int
}

// Stat implements stat(2).
func (k *Kernel) Stat(p *Process, path string) (FileInfo, error) {
	defer k.sysret()
	if err := k.enter(p, SysStat, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return FileInfo{}, err
	}
	ino, err := k.vfs.Lookup(path)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Size: ino.Size(), Mode: ino.Mode, Dir: ino.Dir, Nlink: ino.Nlink}, nil
}

// Fstat implements fstat(2).
func (k *Kernel) Fstat(p *Process, fd int) (FileInfo, error) {
	defer k.sysret()
	if err := k.enter(p, SysFstat, func() string { return fmt.Sprintf("fd=%d", fd) }); err != nil {
		return FileInfo{}, err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil {
		return FileInfo{}, ErrBadFD
	}
	return FileInfo{Size: f.ino.Size(), Mode: f.ino.Mode, Dir: f.ino.Dir, Nlink: f.ino.Nlink}, nil
}

// Truncate implements truncate(2).
func (k *Kernel) Truncate(p *Process, path string, size int64) error {
	defer k.sysret()
	if err := k.enter(p, SysTruncate, func() string { return fmt.Sprintf("path=%q size=%d", path, size) }); err != nil {
		return err
	}
	return k.vfs.Truncate(path, size)
}

// Ftruncate implements ftruncate(2).
func (k *Kernel) Ftruncate(p *Process, fd int, size int64) error {
	defer k.sysret()
	if err := k.enter(p, SysFtruncate, func() string { return fmt.Sprintf("fd=%d size=%d", fd, size) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil {
		return ErrBadFD
	}
	return f.ino.Truncate(size)
}

// Unlink implements unlink(2).
func (k *Kernel) Unlink(p *Process, path string) error {
	defer k.sysret()
	if err := k.enter(p, SysUnlink, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return err
	}
	return k.vfs.Remove(path)
}

// Unlinkat implements unlinkat(2) (single-namespace model).
func (k *Kernel) Unlinkat(p *Process, dirfd int, path string) error {
	defer k.sysret()
	if err := k.enter(p, SysUnlinkat, func() string { return fmt.Sprintf("dirfd=%d path=%q", dirfd, path) }); err != nil {
		return err
	}
	return k.vfs.Remove(path)
}

// Rename implements rename(2).
func (k *Kernel) Rename(p *Process, oldp, newp string) error {
	defer k.sysret()
	if err := k.enter(p, SysRename, func() string { return fmt.Sprintf("old=%q new=%q", oldp, newp) }); err != nil {
		return err
	}
	return k.vfs.Rename(oldp, newp)
}

// Mkdir implements mkdir(2).
func (k *Kernel) Mkdir(p *Process, path string, mode uint32) error {
	defer k.sysret()
	if err := k.enter(p, SysMkdir, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return err
	}
	return k.vfs.Mkdir(path, mode)
}

// Rmdir implements rmdir(2).
func (k *Kernel) Rmdir(p *Process, path string) error {
	defer k.sysret()
	if err := k.enter(p, SysRmdir, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return err
	}
	ino, err := k.vfs.Lookup(path)
	if err != nil {
		return err
	}
	if !ino.Dir {
		return ErrNotDir
	}
	return k.vfs.Remove(path)
}

// Link implements link(2).
func (k *Kernel) Link(p *Process, oldp, newp string) error {
	defer k.sysret()
	if err := k.enter(p, SysLink, func() string { return fmt.Sprintf("old=%q new=%q", oldp, newp) }); err != nil {
		return err
	}
	return k.vfs.Link(oldp, newp)
}

// Symlink implements symlink(2).
func (k *Kernel) Symlink(p *Process, target, newp string) error {
	defer k.sysret()
	if err := k.enter(p, SysSymlink, func() string { return fmt.Sprintf("target=%q new=%q", target, newp) }); err != nil {
		return err
	}
	return k.vfs.Symlink(target, newp)
}

// Chmod implements chmod(2).
func (k *Kernel) Chmod(p *Process, path string, mode uint32) error {
	defer k.sysret()
	if err := k.enter(p, SysChmod, func() string { return fmt.Sprintf("path=%q mode=%#o", path, mode) }); err != nil {
		return err
	}
	ino, err := k.vfs.Lookup(path)
	if err != nil {
		return err
	}
	ino.Mode = mode
	return nil
}

// Fchmod implements fchmod(2).
func (k *Kernel) Fchmod(p *Process, fd int, mode uint32) error {
	defer k.sysret()
	if err := k.enter(p, SysFchmod, func() string { return fmt.Sprintf("fd=%d mode=%#o", fd, mode) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil {
		return ErrBadFD
	}
	f.ino.Mode = mode
	return nil
}

// Mknod implements mknod(2) (regular files only in the model).
func (k *Kernel) Mknod(p *Process, path string, mode uint32) error {
	defer k.sysret()
	if err := k.enter(p, SysMknod, func() string { return fmt.Sprintf("path=%q", path) }); err != nil {
		return err
	}
	_, err := k.vfs.Create(path, mode, true)
	return err
}

// Getdents implements getdents(2), returning child names.
func (k *Kernel) Getdents(p *Process, fd int) ([]string, error) {
	defer k.sysret()
	if err := k.enter(p, SysGetdents, func() string { return fmt.Sprintf("fd=%d", fd) }); err != nil {
		return nil, err
	}
	f, ok := p.fds[fd]
	if !ok || f.ino == nil || !f.ino.Dir {
		return nil, ErrBadFD
	}
	return k.vfs.ReadDir(f.Path)
}

// Dup implements dup(2).
func (k *Kernel) Dup(p *Process, fd int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysDup, func() string { return fmt.Sprintf("fd=%d", fd) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok {
		return -1, ErrBadFD
	}
	cp := *f
	return p.installFD(&cp), nil
}

// Dup2 implements dup2(2).
func (k *Kernel) Dup2(p *Process, oldfd, newfd int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysDup2, func() string { return fmt.Sprintf("old=%d new=%d", oldfd, newfd) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[oldfd]
	if !ok {
		return -1, ErrBadFD
	}
	cp := *f
	p.fds[newfd] = &cp
	if newfd >= p.nextFD {
		p.nextFD = newfd + 1
	}
	return newfd, nil
}

// Dup3 implements dup3(2).
func (k *Kernel) Dup3(p *Process, oldfd, newfd, flags int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysDup3, func() string { return fmt.Sprintf("old=%d new=%d", oldfd, newfd) }); err != nil {
		return -1, err
	}
	if oldfd == newfd {
		return -1, ErrInval
	}
	f, ok := p.fds[oldfd]
	if !ok {
		return -1, ErrBadFD
	}
	cp := *f
	p.fds[newfd] = &cp
	if newfd >= p.nextFD {
		p.nextFD = newfd + 1
	}
	return newfd, nil
}

// Pipe2 implements pipe2(2), returning (readFD, writeFD).
func (k *Kernel) Pipe2(p *Process, flags int) (int, int, error) {
	defer k.sysret()
	if err := k.enter(p, SysPipe2, func() string { return "pipe2" }); err != nil {
		return -1, -1, err
	}
	q := &byteQueue{}
	r := &pipeEnd{q: q, readSide: true}
	w := &pipeEnd{q: q}
	r.peer, w.peer = w, r
	rfd := p.installFD(&FD{Path: "pipe:[r]", pipe: r})
	wfd := p.installFD(&FD{Path: "pipe:[w]", pipe: w, Flags: OWronly})
	return rfd, wfd, nil
}

// Sendfile implements sendfile(2) (file → socket/file).
func (k *Kernel) Sendfile(p *Process, outfd, infd int, count int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysSendfile, func() string { return fmt.Sprintf("out=%d in=%d n=%d", outfd, infd, count) }); err != nil {
		return -1, err
	}
	in, ok := p.fds[infd]
	if !ok || in.ino == nil {
		return -1, ErrBadFD
	}
	// Serve straight out of the inode's backing store: the VFS lives in
	// kernel memory, so the only data movement left is the write into the
	// destination (the charge still models the user-visible copy).
	var data []byte
	if in.off >= 0 && in.off < in.ino.Size() {
		data = in.ino.Data[in.off:]
		if len(data) > count {
			data = data[:count]
		}
	}
	in.off += int64(len(data))
	k.chargeCopy(len(data))
	return k.writeNoAudit(p, outfd, data)
}

// Splice implements a simplified splice(2) between two FDs.
func (k *Kernel) Splice(p *Process, infd, outfd int, count int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysSplice, func() string { return fmt.Sprintf("in=%d out=%d n=%d", infd, outfd, count) }); err != nil {
		return -1, err
	}
	if in, ok := p.fds[infd]; ok && in.ino != nil {
		// File source: splice the inode's backing bytes to the sink with no
		// staging buffer, mirroring readNoAudit's checks and charge.
		if !in.readable() {
			return -1, ErrBadFD
		}
		var data []byte
		if in.off >= 0 && in.off < in.ino.Size() {
			data = in.ino.Data[in.off:]
			if len(data) > count {
				data = data[:count]
			}
		}
		in.off += int64(len(data))
		k.chargeCopy(len(data))
		if len(data) == 0 {
			return 0, nil
		}
		return k.writeNoAudit(p, outfd, data)
	}
	if cap(k.spliceBuf) < count {
		k.spliceBuf = make([]byte, count)
	}
	buf := k.spliceBuf[:count]
	n, err := k.readNoAudit(p, infd, buf)
	if err != nil || n == 0 {
		return n, err
	}
	return k.writeNoAudit(p, outfd, buf[:n])
}

// --- memory syscalls ---

// Mmap implements anonymous mmap(2): it allocates guest frames and maps
// them into the process page tables with the requested protection.
func (k *Kernel) Mmap(p *Process, length uint64, prot uint64) (uint64, error) {
	defer k.sysret()
	if err := k.enter(p, SysMmap, func() string { return fmt.Sprintf("len=%d prot=%#x", length, prot) }); err != nil {
		return 0, err
	}
	if length == 0 {
		return 0, ErrInval
	}
	virt := p.mmapNext
	rounded := (length + snp.PageSize - 1) &^ uint64(snp.PageSize-1)
	if err := p.MapRegion(virt, rounded, prot); err != nil {
		return 0, err
	}
	p.mmapNext += rounded + snp.PageSize // guard gap
	return virt, nil
}

// Munmap implements munmap(2) for a whole region created by Mmap.
func (k *Kernel) Munmap(p *Process, virt uint64) error {
	defer k.sysret()
	if err := k.enter(p, SysMunmap, func() string { return fmt.Sprintf("addr=%#x", virt) }); err != nil {
		return err
	}
	if p.Enclave != nil && p.Enclave.Covers(virt, 1) {
		// The OS may not change enclave layout post-installation (§6.2).
		k.m.ObserveDenied(snp.DeniedPinned, virt)
		return ErrInval
	}
	return p.UnmapRegion(virt)
}

// Mprotect implements mprotect(2). For processes hosting an enclave, the
// OS is only allowed to change non-enclave regions, and those changes are
// synchronized into the protected enclave page tables by VeilS-Enc (§6.2).
func (k *Kernel) Mprotect(p *Process, virt, length uint64, prot uint64) error {
	defer k.sysret()
	if err := k.enter(p, SysMprotect, func() string { return fmt.Sprintf("addr=%#x len=%d prot=%#x", virt, length, prot) }); err != nil {
		return err
	}
	if p.Enclave != nil && p.Enclave.Covers(virt, length) {
		// Enclave-covered layout is pinned post-installation (§6.2).
		k.m.ObserveDenied(snp.DeniedPinned, virt)
		return ErrInval
	}
	as, err := p.AddressSpace()
	if err != nil {
		return err
	}
	length = (length + snp.PageSize - 1) &^ uint64(snp.PageSize-1)
	for off := uint64(0); off < length; off += snp.PageSize {
		if err := as.Protect(virt+off, protFlags(prot)); err != nil {
			return err
		}
	}
	if p.Enclave != nil {
		return p.Enclave.SyncPermissions(virt, length, prot)
	}
	return nil
}

// --- socket syscalls ---

// Socket implements socket(2).
func (k *Kernel) Socket(p *Process, domain, typ int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysSocket, func() string { return fmt.Sprintf("domain=%d type=%d", domain, typ) }); err != nil {
		return -1, err
	}
	if domain != AFInet && domain != AFUnix {
		return -1, ErrInval
	}
	s := &Socket{Domain: domain, Type: typ}
	return p.installFD(&FD{Path: "socket:", sock: s}), nil
}

// Bind implements bind(2).
func (k *Kernel) Bind(p *Process, fd, port int) error {
	defer k.sysret()
	if err := k.enter(p, SysBind, func() string { return fmt.Sprintf("fd=%d port=%d", fd, port) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return ErrBadFD
	}
	return k.net().bind(f.sock, port)
}

// Listen implements listen(2).
func (k *Kernel) Listen(p *Process, fd, backlog int) error {
	defer k.sysret()
	if err := k.enter(p, SysListen, func() string { return fmt.Sprintf("fd=%d backlog=%d", fd, backlog) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return ErrBadFD
	}
	return k.net().listen(f.sock)
}

// Connect implements connect(2) to a loopback port.
func (k *Kernel) Connect(p *Process, fd, port int) error {
	defer k.sysret()
	if err := k.enter(p, SysConnect, func() string { return fmt.Sprintf("fd=%d port=%d", fd, port) }); err != nil {
		return err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return ErrBadFD
	}
	return k.net().connect(f.sock, port)
}

// Accept implements accept(2)/accept4(2).
func (k *Kernel) Accept(p *Process, fd int) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysAccept, func() string { return fmt.Sprintf("fd=%d", fd) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return -1, ErrBadFD
	}
	s, err := k.net().accept(f.sock)
	if err != nil {
		return -1, err
	}
	return p.installFD(&FD{Path: "socket:accepted", sock: s}), nil
}

// Sendto implements send/sendto(2).
func (k *Kernel) Sendto(p *Process, fd int, buf []byte) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysSendto, func() string { return fmt.Sprintf("fd=%d len=%d", fd, len(buf)) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return -1, ErrBadFD
	}
	n, err := f.sock.send(buf)
	k.chargeCopy(n)
	return n, err
}

// Recvfrom implements recv/recvfrom(2).
func (k *Kernel) Recvfrom(p *Process, fd int, buf []byte) (int, error) {
	defer k.sysret()
	if err := k.enter(p, SysRecvfrom, func() string { return fmt.Sprintf("fd=%d len=%d", fd, len(buf)) }); err != nil {
		return -1, err
	}
	f, ok := p.fds[fd]
	if !ok || f.sock == nil {
		return -1, ErrBadFD
	}
	n, err := f.sock.recv(buf)
	k.chargeCopy(n)
	return n, err
}

// Socketpair implements socketpair(2).
func (k *Kernel) Socketpair(p *Process, domain, typ int) (int, int, error) {
	defer k.sysret()
	if err := k.enter(p, SysSocketpair, func() string { return "socketpair" }); err != nil {
		return -1, -1, err
	}
	a2b, b2a := &byteQueue{}, &byteQueue{}
	ca := &conn{tx: a2b, rx: b2a}
	cb := &conn{tx: b2a, rx: a2b}
	ca.remote, cb.remote = cb, ca
	sa := &Socket{Domain: domain, Type: typ, peer: ca}
	sb := &Socket{Domain: domain, Type: typ, peer: cb}
	return p.installFD(&FD{Path: "socket:pair", sock: sa}),
		p.installFD(&FD{Path: "socket:pair", sock: sb}), nil
}

// --- process syscalls ---

// Getpid implements getpid(2).
func (k *Kernel) Getpid(p *Process) int {
	defer k.sysret()
	_ = k.enter(p, SysGetpid, func() string { return "" })
	return p.PID
}

// Getuid implements getuid(2).
func (k *Kernel) Getuid(p *Process) int {
	defer k.sysret()
	_ = k.enter(p, SysGetuid, func() string { return "" })
	return p.UID
}

// Setuid implements setuid(2).
func (k *Kernel) Setuid(p *Process, uid int) error {
	defer k.sysret()
	if err := k.enter(p, SysSetuid, func() string { return fmt.Sprintf("uid=%d", uid) }); err != nil {
		return err
	}
	p.UID = uid
	return nil
}

// Fork implements fork(2): the child shares no memory but inherits the FD
// table (descriptor objects are duplicated).
func (k *Kernel) Fork(p *Process) (*Process, error) {
	defer k.sysret()
	if err := k.enter(p, SysFork, func() string { return "" }); err != nil {
		return nil, err
	}
	child := k.Spawn(p.Name)
	for fd, f := range p.fds {
		cp := *f
		child.fds[fd] = &cp
		if fd >= child.nextFD {
			child.nextFD = fd + 1
		}
	}
	child.UID = p.UID
	k.m.Clock().Charge(snp.CostContextSwitch, snp.CyclesContextSwitch)
	return child, nil
}

// Execve implements execve(2) as a process image replacement marker.
func (k *Kernel) Execve(p *Process, path string, argv []string) error {
	defer k.sysret()
	if err := k.enter(p, SysExecve, func() string { return fmt.Sprintf("path=%q argv=%d", path, len(argv)) }); err != nil {
		return err
	}
	if _, err := k.vfs.Lookup(path); err != nil {
		return err
	}
	p.Name = path
	return nil
}

// Exit implements exit(2).
func (k *Kernel) Exit(p *Process, code int) error {
	defer k.sysret()
	if err := k.enter(p, SysExit, func() string { return fmt.Sprintf("code=%d", code) }); err != nil {
		return err
	}
	p.exited, p.exitCode = true, code
	return p.teardown()
}

// SchedYield implements sched_yield(2) (context-switch cost only).
func (k *Kernel) SchedYield(p *Process) {
	defer k.sysret()
	_ = k.enter(p, SysSchedYield, func() string { return "" })
	k.m.Clock().Charge(snp.CostContextSwitch, snp.CyclesContextSwitch)
}

// Nanosleep charges virtual time.
func (k *Kernel) Nanosleep(p *Process, nanos uint64) {
	defer k.sysret()
	_ = k.enter(p, SysNanosleep, func() string { return fmt.Sprintf("ns=%d", nanos) })
	k.m.Clock().Charge(snp.CostCompute, nanos*snp.SimClockHz/1_000_000_000)
}

// Gettime returns the virtual clock in nanoseconds.
func (k *Kernel) Gettime(p *Process) uint64 {
	defer k.sysret()
	_ = k.enter(p, SysGettime, func() string { return "" })
	return uint64(k.m.Clock().Seconds() * 1e9)
}

// Ioctl implements ioctl(2), dispatching to registered device handlers.
func (k *Kernel) Ioctl(p *Process, fd int, req uint64, arg []byte) (uint64, error) {
	defer k.sysret()
	if err := k.enter(p, SysIoctl, func() string { return fmt.Sprintf("fd=%d req=%#x", fd, req) }); err != nil {
		return 0, err
	}
	f, ok := p.fds[fd]
	if !ok {
		return 0, ErrBadFD
	}
	h, ok := k.devices[f.Path]
	if !ok {
		return 0, ErrInval
	}
	return h(p, req, arg)
}
