package kernel

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomSyscallSoak hammers the kernel with randomized (but typed)
// syscall sequences from several processes. The simulator must never
// panic, never halt the machine (these are all legal-if-ugly inputs, not
// RMP violations), and never corrupt allocator bookkeeping.
func TestRandomSyscallSoak(t *testing.T) {
	k := newNativeKernel(t, 1)
	rng := rand.New(rand.NewSource(20260704))

	procs := make([]*Process, 4)
	for i := range procs {
		procs[i] = k.Spawn(fmt.Sprintf("soak-%d", i))
	}
	paths := []string{"/tmp/a", "/tmp/b", "/tmp/c/d", "/no/such", "/tmp", "/dev/console"}
	openFDs := map[int][]int{}
	regions := map[int][]uint64{}

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("kernel panicked under soak: %v", r)
		}
	}()

	for step := 0; step < 8000; step++ {
		pi := rng.Intn(len(procs))
		p := procs[pi]
		switch rng.Intn(14) {
		case 0:
			fd, err := k.Open(p, paths[rng.Intn(len(paths))], OCreat|ORdwr, 0o644)
			if err == nil {
				openFDs[pi] = append(openFDs[pi], fd)
			}
		case 1:
			if fds := openFDs[pi]; len(fds) > 0 {
				i := rng.Intn(len(fds))
				_ = k.Close(p, fds[i])
				openFDs[pi] = append(fds[:i], fds[i+1:]...)
			}
		case 2:
			if fds := openFDs[pi]; len(fds) > 0 {
				buf := make([]byte, rng.Intn(512))
				_, _ = k.Write(p, fds[rng.Intn(len(fds))], buf)
			}
		case 3:
			if fds := openFDs[pi]; len(fds) > 0 {
				buf := make([]byte, rng.Intn(512))
				_, _ = k.Read(p, fds[rng.Intn(len(fds))], buf)
			}
		case 4:
			if fds := openFDs[pi]; len(fds) > 0 {
				_, _ = k.Lseek(p, fds[rng.Intn(len(fds))], int64(rng.Intn(8192))-100, rng.Intn(4))
			}
		case 5:
			_, _ = k.Stat(p, paths[rng.Intn(len(paths))])
		case 6:
			_ = k.Unlink(p, paths[rng.Intn(len(paths))])
		case 7:
			_ = k.Rename(p, paths[rng.Intn(len(paths))], paths[rng.Intn(len(paths))])
		case 8:
			if len(regions[pi]) < 8 {
				if addr, err := k.Mmap(p, uint64(1+rng.Intn(4))*4096, ProtRead|ProtWrite); err == nil {
					regions[pi] = append(regions[pi], addr)
				}
			}
		case 9:
			if rs := regions[pi]; len(rs) > 0 {
				i := rng.Intn(len(rs))
				if err := k.Munmap(p, rs[i]); err == nil {
					regions[pi] = append(rs[:i], rs[i+1:]...)
				}
			}
		case 10:
			if rs := regions[pi]; len(rs) > 0 {
				_ = k.Mprotect(p, rs[rng.Intn(len(rs))], 4096, uint64(rng.Intn(8)))
			}
		case 11:
			_, _ = k.Socket(p, rng.Intn(4), SockStream)
		case 12:
			_ = k.Mkdir(p, fmt.Sprintf("/tmp/d%d", rng.Intn(16)), 0o755)
		case 13:
			k.SchedYield(p)
		}
		if k.Machine().Halted() != nil {
			t.Fatalf("step %d: machine halted: %v", step, k.Machine().Halted())
		}
	}

	// Teardown must succeed and release everything the soak acquired.
	free := k.alloc.FreePages()
	for _, p := range procs {
		if err := k.Exit(p, 0); err != nil {
			t.Fatalf("exit: %v", err)
		}
	}
	if k.alloc.FreePages() < free {
		t.Fatal("soak leaked frames past exit")
	}
}

// TestAuditedSoak repeats a shorter soak with the full ruleset enabled so
// the audit path sees the same input diversity.
func TestAuditedSoak(t *testing.T) {
	k := newNativeKernel(t, 1)
	k.Audit().SetRules(DefaultRuleset())
	rng := rand.New(rand.NewSource(42))
	p := k.Spawn("audit-soak")
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0:
			if fd, err := k.Open(p, "/tmp/audit-soak", OCreat|ORdwr, 0o644); err == nil {
				_, _ = k.Write(p, fd, []byte("x"))
				_ = k.Close(p, fd)
			}
		case 1:
			_ = k.Unlink(p, "/tmp/audit-soak")
		case 2:
			_, _ = k.Socket(p, AFInet, SockStream)
		case 3:
			_ = k.Setuid(p, rng.Intn(3))
		}
	}
	if k.Audit().Count() == 0 {
		t.Fatal("no audit records under soak")
	}
}
