package kernel

import (
	"errors"
	"fmt"
)

// The network stack is a loopback-only socket layer: enough surface for the
// paper's server workloads (lighttpd/NGINX-style HTTP over AF_INET stream
// sockets, memcached's text protocol) and the audited network syscalls of
// Table 5's ruleset. The simulation is synchronous, so "blocking" reads on
// an empty queue return ErrWouldBlock and the load drivers interleave
// client and server steps.

// Socket domains and types (Linux numbering).
const (
	AFInet     = 2
	AFUnix     = 1
	SockStream = 1
	SockDgram  = 2
)

// Network errors.
var (
	ErrWouldBlock   = errors.New("operation would block")
	ErrNotConnected = errors.New("socket not connected")
	ErrInUse        = errors.New("address in use")
	ErrRefused      = errors.New("connection refused")
	ErrClosed       = errors.New("connection closed")
)

// Socket is one endpoint.
type Socket struct {
	Domain, Type int
	port         int
	listening    bool
	backlog      []*conn
	peer         *conn // established connection, from this side's view
}

// conn is one direction-pair of byte queues.
type conn struct {
	tx, rx *byteQueue
	closed bool
	remote *conn
}

type byteQueue struct{ buf []byte }

func (q *byteQueue) write(b []byte) int {
	q.buf = append(q.buf, b...)
	return len(b)
}

func (q *byteQueue) read(b []byte) int {
	n := copy(b, q.buf)
	q.buf = q.buf[n:]
	return n
}

func (q *byteQueue) len() int { return len(q.buf) }

// netStack is the kernel's loopback fabric.
type netStack struct {
	listeners map[int]*Socket // port → listening socket
}

func (k *Kernel) net() *netStack {
	if k.netstack == nil {
		k.netstack = &netStack{listeners: make(map[int]*Socket)}
	}
	return k.netstack
}

// bindSocket attaches a socket to a port.
func (n *netStack) bind(s *Socket, port int) error {
	if _, busy := n.listeners[port]; busy {
		return ErrInUse
	}
	s.port = port
	return nil
}

func (n *netStack) listen(s *Socket) error {
	if s.port == 0 {
		return ErrInval
	}
	s.listening = true
	n.listeners[s.port] = s
	return nil
}

// connect establishes a loopback connection to a listening port, producing
// the client-side conn; the server side lands in the listener's backlog.
func (n *netStack) connect(s *Socket, port int) error {
	l, ok := n.listeners[port]
	if !ok || !l.listening {
		return ErrRefused
	}
	a2b, b2a := &byteQueue{}, &byteQueue{}
	client := &conn{tx: a2b, rx: b2a}
	server := &conn{tx: b2a, rx: a2b}
	client.remote, server.remote = server, client
	s.peer = client
	l.backlog = append(l.backlog, server)
	return nil
}

// accept pops one pending connection as a fresh socket.
func (n *netStack) accept(l *Socket) (*Socket, error) {
	if !l.listening {
		return nil, ErrInval
	}
	if len(l.backlog) == 0 {
		return nil, ErrWouldBlock
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return &Socket{Domain: l.Domain, Type: l.Type, peer: c}, nil
}

func (s *Socket) send(b []byte) (int, error) {
	if s.peer == nil {
		return 0, ErrNotConnected
	}
	if s.peer.closed || s.peer.remote.closed {
		return 0, ErrClosed
	}
	return s.peer.tx.write(b), nil
}

func (s *Socket) recv(b []byte) (int, error) {
	if s.peer == nil {
		return 0, ErrNotConnected
	}
	if s.peer.rx.len() == 0 {
		if s.peer.remote.closed {
			return 0, nil // orderly EOF
		}
		return 0, ErrWouldBlock
	}
	return s.peer.rx.read(b), nil
}

// closeSocket shuts the endpoint down.
func (n *netStack) close(s *Socket) {
	if s.listening {
		delete(n.listeners, s.port)
		s.listening = false
	}
	if s.peer != nil {
		s.peer.closed = true
	}
}

// Pending reports queued bytes available to read (drivers use it to poll).
func (s *Socket) Pending() int {
	if s.peer == nil {
		return 0
	}
	return s.peer.rx.len()
}

func (s *Socket) String() string {
	return fmt.Sprintf("socket(domain=%d type=%d port=%d)", s.Domain, s.Type, s.port)
}
