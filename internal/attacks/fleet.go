package attacks

// Fleet attacks: the cross-CVM rows of the security analysis. The
// adversary here is the host fabric between two Veil machines — it can
// tamper with, replay, duplicate, and reorder frames at will — plus the
// classic mismeasured-peer case where the remote CVM simply is not running
// the image the local trust policy expects. Every defence is VeilS-Channel
// refusing, with a DeniedChannel record in the victim's flight ring as the
// auditor-visible evidence.

import (
	"errors"
	"fmt"

	"veil/internal/audit"
	"veil/internal/core"
	"veil/internal/cvm"
	"veil/internal/fabric"
	"veil/internal/obs"
	"veil/internal/sched"
	"veil/internal/services/chn"
)

// freshFleet boots a 2-machine fleet and marks one machine as the attack's
// victim: its flight ring is what execute() collects evidence from.
func freshFleet(victim int) (*cvm.Fleet, error) {
	seedCounter++
	f, err := cvm.BootFleet(cvm.FleetOptions{
		Machines: 2,
		Seed:     seedCounter,
		// A deep flight ring: the hostile run continues for its full slice
		// budget after the refusal, and the denial event must survive to
		// be collected as evidence.
		Base: cvm.Options{MemBytes: 24 << 20, VCPUs: 1, LogPages: 8, FlightCapacity: 1 << 14},
		Link: fabric.LinkModel{BaseLatency: 2_000, Jitter: 200},
	})
	if err != nil {
		return nil, err
	}
	lastBoot, lastAuditor = f.CVMs[victim], nil
	if auditing {
		lastAuditor = audit.Attach(f.CVMs[victim].M, audit.Config{})
	}
	return f, nil
}

// fleetPeer drives one machine through a hostile handshake: machine 0
// initiates `dials` sessions toward machine 1 and bursts `pings` data
// messages into each one that establishes. Every slice costs budget, so a
// refused or black-holed handshake winds down instead of stalling the
// stepper — the attacks assert on the service counters afterwards.
type fleetPeer struct {
	c         *cvm.CVM
	st        *core.OSStub
	peer      int
	initiator bool
	dials     int
	pings     int
	budget    int

	dialed   int
	sent     map[uint32]int
	received int
}

func (p *fleetPeer) Step(vcpu int) (sched.Status, error) {
	p.budget--
	if p.budget <= 0 {
		return sched.Done, nil
	}
	// A denied delivery IS the defence under test — VeilS-Channel refusing
	// the hostile frame. Only unexpected failures abort the run.
	for _, fr := range p.c.DrainNetFrames() {
		if err := p.st.ChnDeliver(fr); err != nil && !errors.Is(err, core.ErrDenied) {
			return sched.Done, err
		}
	}
	if p.initiator && p.dialed < p.dials {
		if _, err := p.st.ChnDial(p.peer); err != nil {
			return sched.Done, err
		}
		p.dialed++
		return sched.Yield, nil
	}
	for sid := uint32(0); sid < uint32(p.dials); sid++ {
		state, err := p.st.ChnState(0, sid)
		if err != nil {
			return sched.Done, err
		}
		if state != chn.StateEstablished {
			continue
		}
		for {
			_, ok, err := p.st.ChnRecv(0, sid)
			if err != nil {
				return sched.Done, err
			}
			if !ok {
				break
			}
			p.received++
		}
		if p.initiator {
			for p.sent[sid] < p.pings {
				msg := fmt.Sprintf("ping-%d-s%d", p.sent[sid]+1, sid)
				if err := p.st.ChnSend(0, sid, []byte(msg)); err != nil {
					return sched.Done, err
				}
				p.sent[sid]++
			}
		}
	}
	return sched.Yield, nil
}

// runFleetPair runs initiator and responder to budget exhaustion (or
// completion) under the fleet stepper.
func runFleetPair(f *cvm.Fleet, dials, pings int) (*fleetPeer, *fleetPeer, error) {
	a := &fleetPeer{
		c: f.CVMs[0], st: f.CVMs[0].Stub, peer: 1,
		initiator: true, dials: dials, pings: pings, budget: 120,
		sent: map[uint32]int{},
	}
	b := &fleetPeer{
		c: f.CVMs[1], st: f.CVMs[1].Stub, peer: 0,
		dials: dials, budget: 120, sent: map[uint32]int{},
	}
	scheds := []*sched.Scheduler{
		sched.New(sched.Config{Machine: f.CVMs[0].M, VCPUs: 1, Seed: seedCounter}),
		sched.New(sched.Config{Machine: f.CVMs[1].M, VCPUs: 1, Seed: seedCounter + 1}),
	}
	if err := scheds[0].Add(0, 1, a); err != nil {
		return nil, nil, err
	}
	if err := scheds[1].Add(0, 1, b); err != nil {
		return nil, nil, err
	}
	if _, err := f.Run(scheds); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// offerReportOffset is where the attested-report field starts inside a
// FrameOffer payload: fixed header + 16-byte nonce (+4-byte length).
const offerReportOffset = chn.FrameHeaderLen + 16

// fleetEvidence joins both machines' flight tails by the trace context
// the frames carried: the fleet-wide evidence view an auditor would build
// after the attack.
func fleetEvidence(f *cvm.Fleet) []obs.TraceEvidence {
	ms := make([]obs.MachineEvents, len(f.CVMs))
	for i, c := range f.CVMs {
		ms[i] = obs.MachineEvents{Machine: i, Events: c.M.FlightTail()}
	}
	return obs.CorrelateFleetEvidence(ms)
}

// deniedLeg returns the first trace that originated on machine `origin`
// and was denied on machine `victim` — proof the two flight rings join on
// the frame's trace context, attributing the denial to the request that
// provoked it.
func deniedLeg(evs []obs.TraceEvidence, origin, victim int) *obs.TraceEvidence {
	for i := range evs {
		ev := &evs[i]
		if ev.OriginMachine != origin {
			continue
		}
		if l := ev.Leg(victim); l != nil && len(l.Denied) > 0 {
			return ev
		}
	}
	return nil
}

// Fleet runs the cross-CVM attacks.
func Fleet() []Result {
	return execute([]attack{
		{
			name:    "Dial from mismeasured peer CVM",
			defence: "VeilS-Channel directory check refuses the report",
			run: func() (bool, string) {
				f, err := freshFleet(1)
				if err != nil {
					return false, err.Error()
				}
				// The victim's trust policy expects a different image for
				// machine 0 than the one actually running (the attacker
				// booted modified code; its true measurement differs).
				dir := map[int][32]byte{1: f.Directory[1]}
				var wrong [32]byte
				wrong[0] = 0xEE
				dir[0] = wrong
				f.CVMs[1].CHN.SetDirectory(dir)
				if _, _, err := runFleetPair(f, 1, 1); err != nil {
					return false, err.Error()
				}
				st := f.CVMs[1].CHN.Stats()
				return st.Established == 0 && st.Refused >= 1,
					fmt.Sprintf("victim established=%d refused=%d", st.Established, st.Refused)
			},
		},
		{
			name:    "MitM key substitution in attestation report",
			defence: "PSP signature check refuses the doctored report",
			run: func() (bool, string) {
				f, err := freshFleet(0)
				if err != nil {
					return false, err.Error()
				}
				// The host rewrites the responder's Offer in flight,
				// substituting key material inside the attested report —
				// the classic MitM that unauthenticated DH would miss.
				f.Fab.SetInterceptor(func(m fabric.Message) []fabric.Message {
					if len(m.Payload) > offerReportOffset+16 && m.Payload[0] == chn.FrameOffer {
						p := append([]byte(nil), m.Payload...)
						p[offerReportOffset+16] ^= 0xFF
						m.Payload = p
					}
					return []fabric.Message{m}
				})
				if _, _, err := runFleetPair(f, 1, 1); err != nil {
					return false, err.Error()
				}
				st0, st1 := f.CVMs[0].CHN.Stats(), f.CVMs[1].CHN.Stats()
				return st0.Established == 0 && st1.Established == 0 && st0.Refused >= 1,
					fmt.Sprintf("initiator refused=%d; no session on either side", st0.Refused)
			},
		},
		{
			name:    "Replay stale attestation report across sessions",
			defence: "Transcript hash in ReportData binds nonces and session",
			run: func() (bool, string) {
				f, err := freshFleet(0)
				if err != nil {
					return false, err.Error()
				}
				// Session 0 handshakes honestly; for session 1 the host
				// grafts session 0's (validly signed) report into the new
				// Offer. Only the transcript binding can tell them apart.
				var firstOffer []byte
				f.Fab.SetInterceptor(func(m fabric.Message) []fabric.Message {
					if len(m.Payload) > offerReportOffset && m.Payload[0] == chn.FrameOffer {
						if firstOffer == nil {
							firstOffer = append([]byte(nil), m.Payload...)
						} else {
							p := append([]byte(nil), m.Payload[:offerReportOffset]...)
							p = append(p, firstOffer[offerReportOffset:]...)
							m.Payload = p
						}
					}
					return []fabric.Message{m}
				})
				if _, _, err := runFleetPair(f, 2, 0); err != nil {
					return false, err.Error()
				}
				st0 := f.CVMs[0].CHN.Stats()
				return st0.Established == 1 && st0.Refused >= 1,
					fmt.Sprintf("honest session established; replayed session refused=%d", st0.Refused)
			},
		},
		{
			name:    "Replay sealed data frame on the fabric",
			defence: "AEAD sequence window refuses the duplicate",
			run: func() (bool, string) {
				f, err := freshFleet(1)
				if err != nil {
					return false, err.Error()
				}
				dup := false
				f.Fab.SetInterceptor(func(m fabric.Message) []fabric.Message {
					if !dup && len(m.Payload) > 0 && m.Payload[0] == chn.FrameData && m.Dst == 1 {
						dup = true
						cp := m
						cp.Payload = append([]byte(nil), m.Payload...)
						cp.Arrive = m.Arrive + 1
						return []fabric.Message{m, cp}
					}
					return []fabric.Message{m}
				})
				_, b, err := runFleetPair(f, 1, 2)
				if err != nil {
					return false, err.Error()
				}
				st := f.CVMs[1].CHN.Stats()
				// The denial must be joinable across machines: the victim's
				// DeniedChannel evidence correlates (by the frame's trace
				// context) with a trace that originated on the attacker-facing
				// initiator, machine 0.
				ev := deniedLeg(fleetEvidence(f), 0, 1)
				if ev == nil {
					return false, "denial not joinable to a machine-0 trace in the fleet evidence"
				}
				leg := ev.Leg(1)
				return b.received == 2 && st.Dropped >= 1 && st.Received == 2,
					fmt.Sprintf("victim received=%d dropped=%d; trace %#x (origin m%d) shows %d rx, %d denied on m1",
						st.Received, st.Dropped, ev.Trace, ev.OriginMachine, leg.Received, len(leg.Denied))
			},
		},
		{
			name:    "Reorder sealed data frames on the fabric",
			defence: "Directional nonce sequence refuses out-of-order frames",
			run: func() (bool, string) {
				f, err := freshFleet(1)
				if err != nil {
					return false, err.Error()
				}
				// Hold the first data frame and release it behind the
				// second: the receiver must refuse the leapfrogged frame
				// rather than decrypt out of sequence.
				var held *fabric.Message
				f.Fab.SetInterceptor(func(m fabric.Message) []fabric.Message {
					if len(m.Payload) > 0 && m.Payload[0] == chn.FrameData && m.Dst == 1 {
						if held == nil {
							cp := m
							held = &cp
							return nil
						}
						h := *held
						held = nil
						h.Arrive = m.Arrive + 1
						return []fabric.Message{m, h}
					}
					return []fabric.Message{m}
				})
				_, _, err = runFleetPair(f, 1, 2)
				if err != nil {
					return false, err.Error()
				}
				st := f.CVMs[1].CHN.Stats()
				// Same joinability requirement as the replay row: the
				// leapfrogged frame's refusal must correlate with the
				// machine-0 trace whose frames were reordered.
				ev := deniedLeg(fleetEvidence(f), 0, 1)
				if ev == nil {
					return false, "denial not joinable to a machine-0 trace in the fleet evidence"
				}
				leg := ev.Leg(1)
				return st.Dropped >= 1 && st.Received >= 1,
					fmt.Sprintf("victim received=%d dropped=%d (in-sequence frame still accepted); trace %#x denied %d time(s) on m1",
						st.Received, st.Dropped, ev.Trace, len(leg.Denied))
			},
		},
	})
}
