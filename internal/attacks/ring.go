package attacks

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"veil/internal/core"
	"veil/internal/cvm"
	"veil/internal/snp"
)

// The batched-ring attack suite: a compromised OS owns the submission ring
// and every payload page outright, so the protocol's security rests on
// VeilMon re-validating descriptors at drain time and on the RMP narrowing
// of the completion page. Each attack here forges the exact state a hostile
// kernel could produce and checks that the drain refuses it per-slot (with
// machine-visible denial evidence) or that the hardware faults the forgery.

// ringDescField rewrites one field of the descriptor slot for seq on VCPU
// 0's submission ring — the TOCTOU primitive: SubmitSrv wrote a valid
// descriptor, the attacker rewrites it before ringing the doorbell. The
// submission page is legitimately OS-writable, so this must succeed.
func ringDescField(c *cvm.CVM, seq uint32, off uint64, val uint64, width int) error {
	slot := c.Lay.RingSub(0) + 64 + uint64(seq%core.RingSlots)*64
	buf := make([]byte, width)
	switch width {
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(buf, val)
	default:
		return fmt.Errorf("bad width %d", width)
	}
	return c.K.WritePhys(slot+off, buf)
}

// Ring runs the batched-invocation attacks.
func Ring() []Result {
	return execute([]attack{
		{
			name:    "Resize descriptor mid-flight (TOCTOU)",
			defence: "Drain-time length re-validation",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				pc, err := c.Stub.SubmitSrv(core.Request{Svc: core.SvcLOG, Op: core.OpLogAppend, Payload: []byte("legit")})
				if err != nil {
					return false, err.Error()
				}
				// Between submit and doorbell, grow ReqLen past the payload
				// bound (field offset 16 in the 64-byte descriptor).
				if err := ringDescField(c, pc.Seq, 16, uint64(core.RingPayloadMax)+1, 4); err != nil {
					return false, fmt.Sprintf("tamper write: %v", err)
				}
				if err := c.Stub.Doorbell(); err != nil {
					return false, fmt.Sprintf("doorbell: %v", err)
				}
				r, done, err := c.Stub.Poll(pc)
				if err != nil || !done {
					return false, fmt.Sprintf("poll: done=%v err=%v", done, err)
				}
				alive := c.M.Halted() == nil
				return r.Status == core.StatusDenied && alive,
					fmt.Sprintf("status=%d alive=%v", r.Status, alive)
			},
		},
		{
			name:    "Dangling request GPA (monitor heap)",
			defence: "Sanitizer + RMP ownership re-check",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				pc, err := c.Stub.SubmitSrv(core.Request{Svc: core.SvcLOG, Op: core.OpLogAppend, Payload: []byte("legit")})
				if err != nil {
					return false, err.Error()
				}
				// Repoint ReqGPA (offset 8) into the monitor heap: memory the
				// OS could never read itself. A naive dispatcher would leak it
				// into the service call — or #NPF and kill the machine.
				if err := ringDescField(c, pc.Seq, 8, c.Lay.MonHeapLo, 8); err != nil {
					return false, fmt.Sprintf("tamper write: %v", err)
				}
				if err := c.Stub.Doorbell(); err != nil {
					return false, fmt.Sprintf("doorbell: %v", err)
				}
				r, done, err := c.Stub.Poll(pc)
				if err != nil || !done {
					return false, fmt.Sprintf("poll: done=%v err=%v", done, err)
				}
				alive := c.M.Halted() == nil
				return r.Status == core.StatusDenied && alive,
					fmt.Sprintf("status=%d alive=%v", r.Status, alive)
			},
		},
		{
			name:    "Forge completion from Dom-UNT",
			defence: "Completion page read-only below VMPL1",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				// Fabricate a "completed OK" slot directly: seq 0, status OK.
				forged := make([]byte, 12)
				binary.LittleEndian.PutUint32(forged[4:], core.StatusOK)
				werr := c.K.WritePhys(c.Lay.RingComp(0)+64, forged)
				return snp.IsNPF(werr) && c.M.Halted() != nil, fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "Confused-deputy response GPA (kernel text)",
			defence: "Submitter write-permission re-check",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				before := make([]byte, 8)
				if err := c.K.ReadPhys(c.TextLo, before); err != nil {
					return false, fmt.Sprintf("read text: %v", err)
				}
				// STATS returns a response; aim it at W⊕X kernel text, which
				// the OS cannot write but VMPL1 could — the classic deputy.
				pc, err := c.Stub.SubmitSrv(core.Request{Svc: core.SvcLOG, Op: core.OpLogStats})
				if err != nil {
					return false, err.Error()
				}
				if err := ringDescField(c, pc.Seq, 24, c.TextLo, 8); err != nil {
					return false, fmt.Sprintf("tamper write: %v", err)
				}
				if err := c.Stub.Doorbell(); err != nil {
					return false, fmt.Sprintf("doorbell: %v", err)
				}
				r, done, err := c.Stub.Poll(pc)
				if err != nil || !done {
					return false, fmt.Sprintf("poll: done=%v err=%v", done, err)
				}
				after := make([]byte, 8)
				if err := c.K.ReadPhys(c.TextLo, after); err != nil {
					return false, fmt.Sprintf("re-read text: %v", err)
				}
				alive := c.M.Halted() == nil
				return r.Status == core.StatusDenied && bytes.Equal(before, after) && alive,
					fmt.Sprintf("status=%d text-intact=%v alive=%v", r.Status, bytes.Equal(before, after), alive)
			},
		},
		{
			name:    "Tail jump past real submissions",
			defence: "Capacity clamp + per-slot sequence check",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				// Advance the tail header by 1000 with no descriptors behind
				// it: every drained slot is stale garbage.
				jump := make([]byte, 4)
				binary.LittleEndian.PutUint32(jump, 1000)
				if err := c.K.WritePhys(c.Lay.RingSub(0), jump); err != nil {
					return false, fmt.Sprintf("tail write: %v", err)
				}
				if err := c.Stub.Doorbell(); err != nil {
					return false, fmt.Sprintf("doorbell: %v", err)
				}
				// The drain must refuse every fabricated slot (completion
				// head advances by at most one ring of refusals) and the
				// machine must survive to serve real traffic again.
				alive := c.M.Halted() == nil
				return alive, fmt.Sprintf("alive=%v", alive)
			},
		},
	})
}
