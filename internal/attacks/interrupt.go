package attacks

// Interrupt-misdelivery attacks: the host owns interrupt injection, so it
// can refuse to relay a ring-completion interrupt, deliver it to the wrong
// VCPU, or swallow it entirely. The first variant must halt the CVM (the
// Table 2 defence, now reached through the batched ring path); the other
// two are invisible to the architecture — nothing faults — so the defence
// is the SMP scheduler's lost-wakeup detection: refuse to keep scheduling
// and leave DeniedIntrRoute evidence rather than deadlock.

import (
	"errors"
	"fmt"
	"math/rand"

	"veil/internal/audit"
	"veil/internal/core"
	"veil/internal/cvm"
	"veil/internal/hv"
	"veil/internal/sched"
	"veil/internal/snp"
)

// freshVeilSMP is freshVeil with a chosen VCPU count, for attacks that need
// a second VCPU to misroute onto.
func freshVeilSMP(vcpus int) (*cvm.CVM, error) {
	seedCounter++
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 24 << 20, VCPUs: vcpus, Veil: true, LogPages: 8,
		Rand: detRand{r: rand.New(rand.NewSource(seedCounter))},
	})
	lastBoot, lastAuditor = c, nil
	if err == nil && auditing {
		lastAuditor = audit.Attach(c.M, audit.Config{})
	}
	return c, err
}

// blockOnCompletion drives one victim task through the scheduler: submit a
// request with ring IRQs enabled, post the doorbell asynchronously, block
// in WaitIntr until the completion interrupt arrives. Under honest relay it
// returns nil; under hostile delivery the scheduler's verdict comes back.
func blockOnCompletion(c *cvm.CVM, vcpus, victim int) error {
	// DrainLatency > 1 so the victim is already blocked in WaitIntr when
	// the drain fires — the window where the completion interrupt is the
	// only thing that can wake it.
	s := sched.New(sched.Config{Machine: c.M, VCPUs: vcpus, Seed: seedCounter, DrainLatency: 3})
	c.OnInterrupt(s.Wake)
	st := c.StubFor(victim)
	st.SetDispatcher(s)
	if err := st.EnableRingIRQ(true); err != nil {
		return err
	}
	var pc core.PendingCall
	submitted := false
	if err := s.Add(victim, 1, sched.TaskFunc(func(vcpu int) (sched.Status, error) {
		if !submitted {
			submitted = true
			var err error
			pc, err = st.SubmitSrv(core.Request{Svc: core.SvcLOG, Op: core.OpLogAppend, Payload: []byte("victim append")})
			if err != nil {
				return sched.Yield, err
			}
			if err := st.DoorbellAsync(); err != nil {
				return sched.Yield, err
			}
			return sched.Yield, nil
		}
		if _, err := st.WaitIntr(pc); err != nil {
			if errors.Is(err, core.ErrWouldBlock) {
				return sched.Blocked, nil
			}
			return sched.Yield, err
		}
		return sched.Done, nil
	})); err != nil {
		return err
	}
	_, err := s.Run()
	return err
}

// Interrupts runs the interrupt-misdelivery attacks.
func Interrupts() []Result {
	return execute([]attack{
		{
			name:    "Refuse completion-interrupt relay (hypervisor)",
			defence: "CVM halts with #NPF in the interrupted domain",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				c.HV.SetInterruptRelay(hv.RefuseRelay, core.DomUNT)
				if err := c.Stub.EnableRingIRQ(true); err != nil {
					return false, err.Error()
				}
				if _, err := c.Stub.SubmitSrv(core.Request{Svc: core.SvcLOG, Op: core.OpLogAppend, Payload: []byte("x")}); err != nil {
					return false, err.Error()
				}
				// The completion interrupt is raised inside the drain, while
				// Dom-SRV is current; the refused relay lands it right there.
				derr := c.Stub.Doorbell()
				f := c.M.Halted()
				return derr != nil && f != nil && f.Kind == snp.FaultNPF,
					fmt.Sprintf("doorbell: %v; halt: %v", derr, f)
			},
		},
		{
			name:    "Misroute completion interrupt to another VCPU",
			defence: "Scheduler lost-wakeup refusal + DeniedIntrRoute evidence",
			run: func() (bool, string) {
				c, err := freshVeilSMP(2)
				if err != nil {
					return false, err.Error()
				}
				c.HV.SetInterruptRelay(hv.MisrouteVCPU, core.DomUNT)
				rerr := blockOnCompletion(c, 2, 0)
				return errors.Is(rerr, sched.ErrLostWakeup) && c.M.Halted() == nil,
					fmt.Sprintf("%v", rerr)
			},
		},
		{
			name:    "Drop completion interrupt (hypervisor)",
			defence: "Scheduler lost-wakeup refusal + DeniedIntrRoute evidence",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				c.HV.SetInterruptRelay(hv.DropInterrupt, core.DomUNT)
				rerr := blockOnCompletion(c, 1, 0)
				return errors.Is(rerr, sched.ErrLostWakeup) && c.M.Halted() == nil,
					fmt.Sprintf("%v", rerr)
			},
		},
	})
}
