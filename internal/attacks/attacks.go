// Package attacks implements the paper's §8 security analysis as runnable
// attack suites: every row of Table 1 (framework attacks) and Table 2
// (enclave attacks) plus the two §8.3 validation attacks. Each attack runs
// against a freshly booted CVM and reports whether the defence the paper
// describes actually held in the model — these are the same checks the
// package test suites assert, packaged for the veil-attack binary.
package attacks

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"veil/internal/audit"
	"veil/internal/core"
	"veil/internal/cvm"
	"veil/internal/hv"
	"veil/internal/kernel"
	"veil/internal/mm"
	"veil/internal/obs"
	"veil/internal/sdk"
	"veil/internal/snp"
)

// Evidence is what the observability stack captured while the attack ran:
// the flight-recorder/auditor side of the defence verdict. A defended
// on-platform attack must leave at least one machine-visible trace.
type Evidence struct {
	Faults          uint64 // ClassFault events in the flight ring
	Denied          uint64 // ClassDenied events
	Invariants      uint64 // ClassInvariant events
	Halted          bool
	PostMortem      bool
	AuditViolations uint64 // auditor tally (0 unless SetAuditing(true))
	// DeniedReasons names the distinct refusal classes among the Denied
	// events, in first-seen order ("sanitize", "intr-route", ...), so
	// evidence reads as the defence that fired rather than a bare count.
	DeniedReasons []string
}

// Any reports whether the machine saw the attack at all.
func (e Evidence) Any() bool {
	return e.Faults > 0 || e.Denied > 0 || e.Invariants > 0 || e.Halted || e.PostMortem
}

func (e Evidence) String() string {
	s := fmt.Sprintf("faults=%d denied=%d invariants=%d", e.Faults, e.Denied, e.Invariants)
	if e.Halted {
		s += " halted"
	}
	if e.PostMortem {
		s += " post-mortem"
	}
	if e.AuditViolations > 0 {
		s += fmt.Sprintf(" audit-violations=%d", e.AuditViolations)
	}
	if len(e.DeniedReasons) > 0 {
		s += " [" + strings.Join(e.DeniedReasons, ",") + "]"
	}
	return s
}

// Result is one executed attack.
type Result struct {
	Attack   string
	Defence  string
	Defended bool
	Detail   string
	// OffPlatform marks defences that live outside the machine (attestation
	// measurement comparisons): they leave no fault/denial evidence, and
	// none is required.
	OffPlatform bool
	Evidence    Evidence
}

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

var seedCounter int64 = 9_000

// lastBoot/lastAuditor track the most recent freshVeil CVM so execute can
// collect evidence after the attack returns. Attacks run sequentially.
var (
	lastBoot    *cvm.CVM
	lastAuditor *audit.Auditor
	auditing    bool
)

// SetAuditing attaches an invariant auditor to every subsequently booted
// attack CVM (veil-attack -audit). Evidence then includes the auditor tally.
func SetAuditing(on bool) { auditing = on }

func freshVeil() (*cvm.CVM, error) {
	seedCounter++
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 24 << 20, VCPUs: 1, Veil: true, LogPages: 8,
		Rand: detRand{r: rand.New(rand.NewSource(seedCounter))},
	})
	lastBoot, lastAuditor = c, nil
	if err == nil && auditing {
		lastAuditor = audit.Attach(c.M, audit.Config{})
	}
	return c, err
}

type attack struct {
	name    string
	defence string
	// offPlatform: the defence is an attestation/measurement comparison;
	// no machine-visible evidence is expected.
	offPlatform bool
	run         func() (bool, string)
}

// collectEvidence scans the last booted CVM's flight recorder and machine
// state for traces of the attack that just ran.
func collectEvidence() Evidence {
	var ev Evidence
	c := lastBoot
	if c == nil {
		return ev
	}
	if lastAuditor != nil {
		lastAuditor.Sweep()
		ev.AuditViolations = lastAuditor.Violations()
	}
	if f := c.M.Flight(); f != nil {
		seen := make(map[uint64]bool)
		for _, e := range f.Events() {
			switch e.Class {
			case obs.ClassFault:
				ev.Faults++
			case obs.ClassDenied:
				ev.Denied++
				if !seen[e.Arg1] {
					seen[e.Arg1] = true
					ev.DeniedReasons = append(ev.DeniedReasons, snp.DeniedReason(e.Arg1).String())
				}
			case obs.ClassInvariant:
				ev.Invariants++
			}
		}
	}
	ev.Halted = c.M.Halted() != nil
	ev.PostMortem = c.M.PostMortem() != nil
	return ev
}

func execute(list []attack) []Result {
	out := make([]Result, 0, len(list))
	for _, a := range list {
		lastBoot, lastAuditor = nil, nil
		ok, detail := a.run()
		out = append(out, Result{
			Attack: a.name, Defence: a.defence, Defended: ok, Detail: detail,
			OffPlatform: a.offPlatform, Evidence: collectEvidence(),
		})
	}
	return out
}

// Framework runs the Table 1 attacks.
func Framework() []Result {
	return execute([]attack{
		{
			name:        "Load malicious code at Dom-MON/Dom-SRV (boot)",
			defence:     "Remote attestation",
			offPlatform: true,
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				// The attacker booted a different image; the user expects
				// the measurement of the image they built.
				var wrong [32]byte
				wrong[0] = 0xEE
				user, err := core.NewRemoteUser(c.PSP.PublicKey(), wrong, detRand{r: rand.New(rand.NewSource(7))})
				if err != nil {
					return false, err.Error()
				}
				err = user.Connect(c.Stub)
				return err != nil, fmt.Sprintf("connect: %v", err)
			},
		},
		{
			name:    "Read/write at Dom-MON/Dom-SRV",
			defence: "Restricted by VMPL",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				rerr := c.K.ReadPhys(c.Lay.MonImage, make([]byte, 16))
				return snp.IsNPF(rerr) && c.M.Halted() != nil, fmt.Sprintf("%v", rerr)
			},
		},
		{
			name:    "Adjust VMPL restrictions",
			defence: "RMPADJUST prohibited",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				aerr := c.M.RMPAdjust(snp.VMPL3, c.Lay.MonImage, snp.VMPL3, snp.PermAll)
				e, _ := c.M.RMPEntryAt(c.Lay.MonImage)
				return aerr != nil && e.Perms[snp.VMPL3] == snp.PermNone, fmt.Sprintf("%v", aerr)
			},
		},
		{
			name:    "Overwrite sensitive registers (VMSA)",
			defence: "Protected in Dom-MON",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				srv, _ := c.Mon.ReplicaVMSA(0, core.DomSRV)
				werr := c.K.WritePhys(srv, []byte{0xFF})
				return snp.IsNPF(werr), fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "Overwrite protected page tables",
			defence: "Protected in Dom-MON",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				app, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				cr3 := app.Enclave().View().Mem.CR3
				werr := c.K.WritePhys(cr3, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
				return snp.IsNPF(werr) && c.M.Halted() != nil, fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "Create VCPU at Dom-MON/Dom-SRV",
			defence: "Control creation (RMPADJUST VMSA needs VMPL0)",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				f, err := c.K.AllocFrame()
				if err != nil {
					return false, err.Error()
				}
				cerr := c.M.CreateVMSA(snp.VMPL3, f, snp.VMSA{VCPUID: 0, VMPL: snp.VMPL0})
				return snp.IsGP(cerr), fmt.Sprintf("%v", cerr)
			},
		},
		{
			name:    "Overwrite trusted-side IDCB state (log store)",
			defence: "Protected in Dom-SRV",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				werr := c.K.WritePhys(c.Lay.MonHeapLo, []byte("tamper"))
				return snp.IsNPF(werr), fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "OS sends malicious request (PVALIDATE on monitor page)",
			defence: "OS request sanitized",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				perr := c.Stub.PValidate(c.Lay.MonHeapLo, false)
				return errors.Is(perr, core.ErrDenied) && c.M.Halted() == nil, fmt.Sprintf("%v", perr)
			},
		},
	})
}

func launchNopEnclave(c *cvm.CVM) (*sdk.AppRuntime, *kernel.Process, error) {
	p := c.K.Spawn("victim-app")
	prog := sdk.ProgramFunc(func(sdk.Libc, []string) int { return 0 })
	app, err := sdk.LaunchEnclave(c, p, prog, sdk.EnclaveConfig{RegionPages: 8})
	return app, p, err
}

// Enclave runs the Table 2 attacks.
func Enclave() []Result {
	return execute([]attack{
		{
			name:        "Load incorrect binary",
			defence:     "Enclave attestation",
			offPlatform: true,
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				prog := sdk.ProgramFunc(func(sdk.Libc, []string) int { return 0 })
				p1 := c.K.Spawn("a")
				good, err := sdk.LaunchEnclave(c, p1, prog, sdk.EnclaveConfig{
					RegionPages: 8, Image: []byte("the binary the user expects")})
				if err != nil {
					return false, err.Error()
				}
				p2 := c.K.Spawn("b")
				evil, err := sdk.LaunchEnclave(c, p2, prog, sdk.EnclaveConfig{
					RegionPages: 8, Image: []byte("trojaned binary")})
				if err != nil {
					return false, err.Error()
				}
				return good.Measurement != evil.Measurement,
					"measurements differ; the user only provisions the attested one"
			},
		},
		{
			name:    "Read/write enclave memory from the OS",
			defence: "Restrictions in Dom-UNT",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				_, p, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				frames, _ := p.RegionFrames(kernel.UserBinBase)
				rerr := c.K.ReadPhys(frames[0], make([]byte, 8))
				return snp.IsNPF(rerr) && c.M.Halted() != nil, fmt.Sprintf("%v", rerr)
			},
		},
		{
			name:    "Modify physical layout post-installation",
			defence: "PTs protected in Dom-SRV",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				_, p, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				merr := c.K.Mprotect(p, kernel.UserBinBase, snp.PageSize, kernel.ProtRead)
				uerr := c.K.Munmap(p, kernel.UserBinBase)
				return errors.Is(merr, kernel.ErrInval) && errors.Is(uerr, kernel.ErrInval),
					fmt.Sprintf("mprotect=%v munmap=%v", merr, uerr)
			},
		},
		{
			name:    "Violate saved enclave state (OS)",
			defence: "VMSA protected in Dom-MON",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				app, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				vmsa, ok := c.Mon.ReplicaVMSA(0, app.Tag)
				if !ok {
					return false, "no enclave VMSA"
				}
				werr := c.K.WritePhys(vmsa, []byte{0xFF})
				return snp.IsNPF(werr), fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "Incorrect GHCB mapping",
			defence: "CVM crash on VMGEXIT",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				app, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				// The OS points the MSR at a guest-private page instead of
				// the real GHCB before scheduling the enclave.
				private, _ := c.K.AllocFrame()
				if err := c.K.ScheduleEnclaveGHCB(0, private); err != nil {
					return false, err.Error()
				}
				mem, _ := app.P.Mem()
				_ = mem.WriteU64(0, 0) // no-op; entry below does the work
				_, eerr := enterRaw(c, app)
				return eerr != nil, fmt.Sprintf("entry: %v", eerr)
			},
		},
		{
			name:    "Violate saved state (hypervisor)",
			defence: "VMSA protected in CVM",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				app, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				vmsa, _ := c.Mon.ReplicaVMSA(0, app.Tag)
				terr := c.HV.AttemptVMSATamper(vmsa)
				return terr != nil, fmt.Sprintf("%v", terr)
			},
		},
		{
			name:    "Refuse interrupt relay (hypervisor)",
			defence: "CVM halts with #NPF",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				var ierr error
				prog := sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
					ierr = c.HV.InjectInterrupt(0)
					return 0
				})
				p := c.K.Spawn("victim")
				app, err := sdk.LaunchEnclave(c, p, prog, sdk.EnclaveConfig{RegionPages: 8})
				if err != nil {
					return false, err.Error()
				}
				c.HV.SetInterruptRelay(hv.RefuseRelay, core.DomUNT)
				_, _ = app.Enter()
				_ = ierr
				return c.M.Halted() != nil, fmt.Sprintf("halted: %v", c.M.Halted())
			},
		},
		{
			name:    "Access another enclave's memory from Dom-ENC",
			defence: "Disjoint physical pages + PT confinement",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				victim, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				_ = victim
				// The malicious enclave can only use its own protected
				// tables; the victim's pages are unmapped there.
				var probeErr error
				prog := sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
					er := lc.(*sdk.EnclaveRuntime)
					probeErr = er.View().Mem.Read(0x7000_0000, make([]byte, 8))
					return 0
				})
				p2 := c.K.Spawn("malicious")
				evil, err := sdk.LaunchEnclave(c, p2, prog, sdk.EnclaveConfig{RegionPages: 8})
				if err != nil {
					return false, err.Error()
				}
				if _, err := evil.Enter(); err != nil {
					return false, err.Error()
				}
				return snp.IsPF(probeErr), fmt.Sprintf("probe: %v", probeErr)
			},
		},
		{
			name:    "Execute OS code in Dom-ENC",
			defence: "Supervisor execution disallowed at VMPL2",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				xerr := c.M.GuestExecCheckPhys(snp.VMPL2, snp.CPL0, c.TextLo)
				return snp.IsNPF(xerr), fmt.Sprintf("%v", xerr)
			},
		},
	})
}

// enterRaw enters the enclave without the scheduler hook (the hook is the
// attack surface in the GHCB test).
func enterRaw(c *cvm.CVM, app *sdk.AppRuntime) (int, error) {
	mem, err := app.P.Mem()
	if err != nil {
		return -1, err
	}
	_ = mem
	// Reuse Enter but skip re-pointing the MSR: Enter always re-points,
	// so drive the switch directly.
	g := &snp.GHCB{ExitCode: hv.ExitDomainSwitch, ExitInfo1: app.Tag}
	if err := c.HV.GuestCall(0, snp.VMPL3, snp.CPL3, app.GHCB, g); err != nil {
		return -1, err
	}
	return 0, nil
}

// Validation runs the §8.3 experimental validation attacks.
func Validation() []Result {
	return execute([]attack{
		{
			name:    "Map + overwrite protected page-table entries",
			defence: "Continuous #NPF (CVM halt)",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				app, _, err := launchNopEnclave(c)
				if err != nil {
					return false, err.Error()
				}
				cr3 := app.Enclave().View().Mem.CR3
				werr := c.K.WritePhys(cr3+8, []byte{1, 2, 3, 4, 5, 6, 7, 8})
				return snp.IsNPF(werr) && c.M.Halted() != nil, fmt.Sprintf("%v", werr)
			},
		},
		{
			name:    "Overwrite module text after VeilS-Kci activation",
			defence: "Continuous #NPF (CVM halt)",
			run: func() (bool, string) {
				c, err := freshVeil()
				if err != nil {
					return false, err.Error()
				}
				// Disable page-table W⊕X equivalents is implicit: the
				// kernel writes through its direct map, no PTE checks.
				werr := c.K.WritePhys(c.TextLo, []byte{0xCC})
				return snp.IsNPF(werr) && c.M.Halted() != nil, fmt.Sprintf("%v", werr)
			},
		},
	})
}

// TLB runs the stale-translation attacks against the simulated hardware
// TLB. SEV-SNP caches completed nested walks — the guest translation plus
// the RMP verdict — and the architecture requires RMP mutations and
// page-table edits to invalidate those caches; a verdict that survives an
// RMPADJUST would let the OS keep touching a page the monitor just revoked
// (the classic stale-TLB window). Both attacks warm a translation first so
// the model's cache demonstrably holds the entry being attacked.
func TLB() []Result {
	return execute([]attack{
		{
			name:    "Reuse warm TLB translation after RMPADJUST revoke",
			defence: "RMP-epoch TLB invalidation",
			run:     func() (bool, string) { return staleTLBRevoke(false) },
		},
		{
			name:    "Reuse warm TLB translation after PTE teardown",
			defence: "Per-table-page generation invalidation",
			run:     staleTLBPTEWrite,
		},
		{
			name:    "Suppress TLB invalidation across an RMP revoke",
			defence: "Invariant auditor (stale-verdict detection)",
			run:     auditorCatchesBrokenTLB,
		},
	})
}

// auditorCatchesBrokenTLB is the detection variant of staleTLBRevoke: the
// simulated TLB is configured to skip invalidation (the hardware bug the
// §8.3 validation worries about), so the stale cached verdict actually
// serves the revoked access — the architectural defence is gone. Defended
// here means the invariant auditor catches the inconsistency and freezes a
// post-mortem, even though the access itself succeeded.
func auditorCatchesBrokenTLB() (bool, string) {
	c, err := freshVeil()
	if err != nil {
		return false, err.Error()
	}
	a := audit.Attach(c.M, audit.Config{})
	ctx, _, frame, err := warmTranslation(c)
	if err != nil {
		return false, err.Error()
	}
	c.M.SetBrokenTLBNoInvalidate(true)
	if err := c.M.RMPAdjust(snp.VMPL0, frame, snp.VMPL3, snp.PermNone); err != nil {
		return false, err.Error()
	}
	const virt = uint64(0x7000_0000)
	if _, rerr := ctx.ReadU64(virt); rerr != nil {
		return false, fmt.Sprintf("stale verdict did not serve the access: %v", rerr)
	}
	a.Sweep()
	caught := a.ViolationsBy(audit.CheckRMPTLBEpoch) > 0 ||
		a.ViolationsBy(audit.CheckTLBVerdicts) > 0
	return caught && c.M.PostMortem() != nil,
		fmt.Sprintf("access served stale; auditor violations=%d post-mortem=%v",
			a.Violations(), c.M.PostMortem() != nil)
}

// tlbFrames adapts the kernel's physical allocator to mm.FrameSource for
// the attack's scratch address space.
type tlbFrames struct{ k *kernel.Kernel }

func (f tlbFrames) AllocFrame() (uint64, error) { return f.k.Allocator().Alloc() }
func (f tlbFrames) FreeFrame(p uint64) error    { return f.k.Allocator().Free(p) }

// warmTranslation maps one OS-owned frame and reads through it, leaving a
// live translation (and RMP verdict) in the TLB. It returns the context for
// retries, the address space and the backing frame.
func warmTranslation(c *cvm.CVM) (snp.AccessContext, *mm.AddressSpace, uint64, error) {
	as, err := mm.NewAddressSpace(c.M, snp.VMPL3, tlbFrames{c.K})
	if err != nil {
		return snp.AccessContext{}, nil, 0, err
	}
	frame, err := c.K.Allocator().Alloc()
	if err != nil {
		return snp.AccessContext{}, nil, 0, err
	}
	const virt = uint64(0x7000_0000)
	if err := as.Map(virt, frame, snp.PTEWrite|snp.PTEUser); err != nil {
		return snp.AccessContext{}, nil, 0, err
	}
	ctx := as.Context(snp.CPL0)
	if err := ctx.WriteU64(virt, 0x600D_DA7A); err != nil {
		return snp.AccessContext{}, nil, 0, err
	}
	if _, err := ctx.ReadU64(virt); err != nil {
		return snp.AccessContext{}, nil, 0, err
	}
	return ctx, as, frame, nil
}

// staleTLBRevoke is the RMPADJUST variant: after the monitor strips every
// Dom-UNT permission from the frame, a retry through the still-warm
// translation must re-run the RMP check, #NPF and halt the CVM. With
// broken=true the machine skips all TLB invalidation, which must make the
// attack succeed — that is the teeth check for this whole suite.
func staleTLBRevoke(broken bool) (bool, string) {
	c, err := freshVeil()
	if err != nil {
		return false, err.Error()
	}
	ctx, _, frame, err := warmTranslation(c)
	if err != nil {
		return false, err.Error()
	}
	if broken {
		c.M.SetBrokenTLBNoInvalidate(true)
	}
	if err := c.M.RMPAdjust(snp.VMPL0, frame, snp.VMPL3, snp.PermNone); err != nil {
		return false, err.Error()
	}
	const virt = uint64(0x7000_0000)
	_, rerr := ctx.ReadU64(virt)
	return snp.IsNPF(rerr) && c.M.Halted() != nil, fmt.Sprintf("%v", rerr)
}

// staleTLBPTEWrite is the page-table variant: the mapping is torn down by a
// software write to the live leaf table, so a retry must re-walk and take a
// #PF instead of serving the cached leaf.
func staleTLBPTEWrite() (bool, string) {
	c, err := freshVeil()
	if err != nil {
		return false, err.Error()
	}
	ctx, as, _, err := warmTranslation(c)
	if err != nil {
		return false, err.Error()
	}
	if _, err := as.Unmap(0x7000_0000); err != nil {
		return false, err.Error()
	}
	_, rerr := ctx.ReadU64(0x7000_0000)
	return snp.IsPF(rerr), fmt.Sprintf("%v", rerr)
}
