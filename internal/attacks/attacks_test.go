package attacks

import "testing"

func assertAllDefended(t *testing.T, results []Result) {
	t.Helper()
	for _, r := range results {
		if !r.Defended {
			t.Errorf("BREACHED: %s (%s): %s", r.Attack, r.Defence, r.Detail)
		}
	}
}

func TestTable1FrameworkAttacksAllDefended(t *testing.T) {
	results := Framework()
	if len(results) != 8 {
		t.Fatalf("framework suite has %d attacks, want 8 (Table 1)", len(results))
	}
	assertAllDefended(t, results)
}

func TestTable2EnclaveAttacksAllDefended(t *testing.T) {
	results := Enclave()
	if len(results) != 9 {
		t.Fatalf("enclave suite has %d attacks, want 9 (Table 2)", len(results))
	}
	assertAllDefended(t, results)
}

func TestValidationAttacksAllDefended(t *testing.T) {
	results := Validation()
	if len(results) != 2 {
		t.Fatalf("validation suite has %d attacks, want 2 (§8.3)", len(results))
	}
	assertAllDefended(t, results)
}

func TestStaleTLBAttacksAllDefended(t *testing.T) {
	results := TLB()
	if len(results) != 3 {
		t.Fatalf("tlb suite has %d attacks, want 3", len(results))
	}
	assertAllDefended(t, results)
}

func TestInterruptAttacksAllDefended(t *testing.T) {
	results := Interrupts()
	if len(results) != 3 {
		t.Fatalf("interrupt suite has %d attacks, want 3", len(results))
	}
	assertAllDefended(t, results)
}

// TestDefendedAttacksLeaveEvidence: every defended on-platform attack must
// leave at least one machine-visible trace — a fault or denial event in the
// flight recorder, a halt, or a frozen post-mortem. A defence the
// observability stack cannot see would be un-debuggable in the field.
func TestDefendedAttacksLeaveEvidence(t *testing.T) {
	var all []Result
	all = append(all, Framework()...)
	all = append(all, Enclave()...)
	all = append(all, Validation()...)
	all = append(all, TLB()...)
	all = append(all, Interrupts()...)
	for _, r := range all {
		if !r.Defended || r.OffPlatform {
			continue
		}
		if !r.Evidence.Any() {
			t.Errorf("defended but unobserved: %s (%s)", r.Attack, r.Evidence)
		}
	}
}

// TestAuditedAttacksNoFalsePositives: with the auditor attached to every
// attack CVM, the architectural attacks (which the machine defends
// correctly) must tally zero invariant violations; only the broken-TLB
// detection attack may fire.
func TestAuditedAttacksNoFalsePositives(t *testing.T) {
	SetAuditing(true)
	defer SetAuditing(false)
	for _, r := range append(Framework(), Validation()...) {
		if r.Evidence.AuditViolations != 0 {
			t.Errorf("auditor false positive under %q: %d violations",
				r.Attack, r.Evidence.AuditViolations)
		}
	}
	tlb := TLB()
	for _, r := range tlb[:2] {
		if r.Evidence.AuditViolations != 0 {
			t.Errorf("auditor false positive under %q: %d violations",
				r.Attack, r.Evidence.AuditViolations)
		}
	}
	if last := tlb[2]; last.Evidence.AuditViolations == 0 {
		t.Errorf("broken-TLB attack tallied no auditor violations: %s", last.Detail)
	}
}

// TestStaleTLBAttackHasTeeth reruns the RMPADJUST-revoke attack against a
// machine whose TLB deliberately skips every invalidation. The stale RMP
// verdict must then survive the revoke and the attack must report a breach;
// if it still reported "defended", the suite above would prove nothing.
func TestStaleTLBAttackHasTeeth(t *testing.T) {
	ok, detail := staleTLBRevoke(true)
	if ok {
		t.Fatalf("stale-TLB attack reported defended on a no-invalidate TLB (%s)", detail)
	}
}

func TestFleetAttacksAllDefended(t *testing.T) {
	results := Fleet()
	if len(results) != 5 {
		t.Fatalf("fleet suite has %d attacks, want 5", len(results))
	}
	assertAllDefended(t, results)
	// Every fleet defence must be auditor-visible: the refusing machine
	// records a DeniedChannel event in its flight ring.
	for _, r := range results {
		if r.Evidence.Denied == 0 {
			t.Errorf("no denial evidence for %q: %s", r.Attack, r.Evidence)
		}
	}
}
