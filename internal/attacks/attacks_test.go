package attacks

import "testing"

func assertAllDefended(t *testing.T, results []Result) {
	t.Helper()
	for _, r := range results {
		if !r.Defended {
			t.Errorf("BREACHED: %s (%s): %s", r.Attack, r.Defence, r.Detail)
		}
	}
}

func TestTable1FrameworkAttacksAllDefended(t *testing.T) {
	results := Framework()
	if len(results) != 8 {
		t.Fatalf("framework suite has %d attacks, want 8 (Table 1)", len(results))
	}
	assertAllDefended(t, results)
}

func TestTable2EnclaveAttacksAllDefended(t *testing.T) {
	results := Enclave()
	if len(results) != 9 {
		t.Fatalf("enclave suite has %d attacks, want 9 (Table 2)", len(results))
	}
	assertAllDefended(t, results)
}

func TestValidationAttacksAllDefended(t *testing.T) {
	results := Validation()
	if len(results) != 2 {
		t.Fatalf("validation suite has %d attacks, want 2 (§8.3)", len(results))
	}
	assertAllDefended(t, results)
}

func TestStaleTLBAttacksAllDefended(t *testing.T) {
	results := TLB()
	if len(results) != 2 {
		t.Fatalf("tlb suite has %d attacks, want 2", len(results))
	}
	assertAllDefended(t, results)
}

// TestStaleTLBAttackHasTeeth reruns the RMPADJUST-revoke attack against a
// machine whose TLB deliberately skips every invalidation. The stale RMP
// verdict must then survive the revoke and the attack must report a breach;
// if it still reported "defended", the suite above would prove nothing.
func TestStaleTLBAttackHasTeeth(t *testing.T) {
	ok, detail := staleTLBRevoke(true)
	if ok {
		t.Fatalf("stale-TLB attack reported defended on a no-invalidate TLB (%s)", detail)
	}
}
