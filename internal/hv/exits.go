package hv

import (
	"fmt"
	"sort"

	"veil/internal/snp"
)

// chargeExit accounts one VMGEXIT (full VMSA state save + host dispatch).
func (h *Hypervisor) chargeExit() {
	h.m.Clock().Charge(snp.CostVMGEXIT, snp.CyclesVMGEXITSave)
	h.m.ObserveVMGEXIT()
}

// chargeEnter accounts one VMENTER (VMSA state restore).
func (h *Hypervisor) chargeEnter() {
	h.m.Clock().Charge(snp.CostVMENTER, snp.CyclesVMENTERRestore)
	h.m.ObserveVMENTER()
}

// VMGEXIT is the guest's non-automatic exit: the exiting VCPU's GHCB (found
// through its MSR) carries the request (Fig. 1). The call returns when the
// exiting instance is resumed — for a domain switch that is after the
// target domain ran and switched back, so the Go call structure mirrors the
// paper's Fig. 3 sequence exactly.
func (h *Hypervisor) VMGEXIT(vcpuID int) error {
	if h.m.Halted() != nil {
		return snp.ErrHalted
	}
	c, ok := h.vcpus[vcpuID]
	if !ok || !c.started {
		return fmt.Errorf("hv: VMGEXIT from unknown VCPU %d", vcpuID)
	}
	h.m.SetObsVCPU(vcpuID)
	start := h.m.Clock().Cycles()
	h.chargeExit()
	ghcbPhys, ok := h.m.ReadGHCBMSR(vcpuID)
	if !ok {
		h.m.ObserveDenied(snp.DeniedGHCB, uint64(vcpuID))
		return ErrNoGHCB
	}
	var g snp.GHCB
	if err := h.m.HVReadGHCB(ghcbPhys, &g); err != nil {
		// The "GHCB" is a guest-private page: the host sees ciphertext.
		h.m.ObserveDenied(snp.DeniedGHCB, ghcbPhys)
		return fmt.Errorf("%w: %v", ErrNoGHCB, err)
	}

	// The round trip is the causal root of everything the exit causes:
	// domain switches, RMP instructions, service dispatches and faults all
	// nest under this span until ObserveRoundTrip closes it.
	rt := h.m.BeginSpan()

	var err error
	switch g.ExitCode {
	case ExitDomainSwitch:
		err = h.serveDomainSwitch(c, ghcbPhys, &g, ReasonService)
	case ExitRingDoorbell:
		err = h.serveDomainSwitch(c, ghcbPhys, &g, ReasonDoorbell)
	case ExitRegisterVMSA:
		err = h.serveRegisterVMSA(&g)
		h.chargeEnter()
	case ExitStartVCPU:
		err = h.serveStartVCPU(&g)
		h.chargeEnter()
	case ExitPageState:
		err = h.servePageState(ghcbPhys, &g)
		h.chargeEnter()
	case ExitGuestRequest:
		err = h.serveGuestRequest(c, ghcbPhys, &g)
		h.chargeEnter()
	case ExitIO:
		// Device I/O is serviced host-side; contents are opaque to the
		// model. The exit/enter cost is what matters.
		h.chargeEnter()
	default:
		err = fmt.Errorf("hv: unknown exit code %#x", g.ExitCode)
		h.chargeEnter()
	}
	h.m.ObserveRoundTrip(g.ExitCode, start, rt)
	return err
}

// serveDomainSwitch relays a domain switch (§5.2): resume the same VCPU
// from the target domain's VMSA, and when that domain exits back, resume
// the caller. Each direction costs one full save/restore pair — the 7135
// cycles measured in §9.1. reason tells the target what to do with the
// entry (serve one IDCB request, or drain its doorbell ring).
func (h *Hypervisor) serveDomainSwitch(c *vcpu, ghcbPhys uint64, g *snp.GHCB, reason Reason) error {
	tag := DomainTag(g.ExitInfo1)
	if pol, exists := h.ghcbPolicy[ghcbPhys]; exists && !pol[tag] {
		// Refusing leaves the guest stuck; the caller observes a crash
		// (§6.2 "the CVM crashes on an attempted domain switch").
		h.m.ObserveDenied(snp.DeniedPolicy, uint64(tag))
		return ErrPolicy
	}
	b, ok := h.bindings[c.id][tag]
	if !ok {
		return fmt.Errorf("hv: VCPU %d has no domain %d", c.id, tag)
	}
	caller := c.currentVMSA

	// The from/to privilege levels label the switch span; a missing VMSA
	// would have failed the binding lookup already, so errors degrade to
	// VMPL0 rather than aborting the switch.
	fromVMPL, toVMPL := snp.VMPL0, snp.VMPL0
	if v, err := h.m.VMSAAt(caller); err == nil {
		fromVMPL = v.VMPL
	}
	if v, err := h.m.VMSAAt(b.vmsaPhys); err == nil {
		toVMPL = v.VMPL
	}

	outStart := h.m.Clock().Cycles() - snp.CyclesVMGEXITSave // span includes the exit half
	c.currentVMSA = b.vmsaPhys
	h.chargeEnter()
	h.m.ObserveDomainSwitch(fromVMPL, toVMPL, outStart)
	err := b.ctx.Invoke(reason)

	// Target exits; caller resumes (even on error, so halts propagate
	// with correct accounting).
	backStart := h.m.Clock().Cycles()
	h.chargeExit()
	c.currentVMSA = caller
	h.chargeEnter()
	h.m.ObserveDomainSwitch(toVMPL, fromVMPL, backStart)
	return err
}

// serveRegisterVMSA records a freshly created domain VMSA so later switch
// requests can find it. The hypervisor learns the owning VCPU from the VMSA
// it was handed; it keeps no security state here — whether the VMSA exists
// at all was decided by the RMPADJUST privilege rules inside the guest.
func (h *Hypervisor) serveRegisterVMSA(g *snp.GHCB) error {
	vmsaPhys, tag := g.ExitInfo1, DomainTag(g.ExitInfo2)
	v, err := h.m.VMSAAt(vmsaPhys)
	if err != nil {
		return fmt.Errorf("hv: register VMSA: %w", err)
	}
	ctx, ok := h.byVMSA[vmsaPhys]
	if !ok {
		return fmt.Errorf("hv: VMSA %#x has no bound context", vmsaPhys)
	}
	if h.bindings[v.VCPUID] == nil {
		h.bindings[v.VCPUID] = make(map[DomainTag]binding)
	}
	h.bindings[v.VCPUID][tag] = binding{vmsaPhys: vmsaPhys, ctx: ctx}
	return nil
}

// serveStartVCPU begins executing a new VCPU instance (AP boot/hotplug,
// §5.3): the instance must already have a registered VMSA.
func (h *Hypervisor) serveStartVCPU(g *snp.GHCB) error {
	vmsaPhys := g.ExitInfo1
	v, err := h.m.VMSAAt(vmsaPhys)
	if err != nil {
		return fmt.Errorf("hv: start VCPU: %w", err)
	}
	ctx, ok := h.byVMSA[vmsaPhys]
	if !ok {
		return fmt.Errorf("hv: start VCPU: VMSA %#x has no bound context", vmsaPhys)
	}
	if existing, ok := h.vcpus[v.VCPUID]; ok && existing.started {
		return fmt.Errorf("hv: VCPU %d already running", v.VCPUID)
	}
	h.vcpus[v.VCPUID] = &vcpu{id: v.VCPUID, currentVMSA: vmsaPhys, started: true}
	h.m.SetObsVCPU(v.VCPUID)
	h.chargeEnter()
	err = ctx.Invoke(ReasonBoot)
	h.chargeExit()
	return err
}

// servePageState performs page-state changes: assigning pages to the guest
// or reclaiming shared ones. The reply code lands in SwScratch.
func (h *Hypervisor) servePageState(ghcbPhys uint64, g *snp.GHCB) error {
	phys := g.ExitInfo1
	count := g.ExitInfo2 >> 1
	assign := g.ExitInfo2&1 == 1
	var failed uint64
	for i := uint64(0); i < count; i++ {
		p := phys + i*snp.PageSize
		var err error
		if assign {
			err = h.m.HVAssignPage(p)
		} else {
			err = h.m.HVReclaimPage(p)
		}
		if err != nil {
			failed++
		}
	}
	g.SwScratch = failed
	h.m.ObservePageState(phys, count, assign)
	return h.m.HVWriteGHCB(ghcbPhys, g)
}

// serveGuestRequest relays an attestation report request to the PSP. The
// requester's VMPL comes from the hardware (the exiting VMSA), not from the
// request — this is what lets remote users distinguish a report minted by
// VeilMon at VMPL0 from one minted by a compromised OS at VMPL3 (§5.1).
func (h *Hypervisor) serveGuestRequest(c *vcpu, ghcbPhys uint64, g *snp.GHCB) error {
	v, err := h.m.VMSAAt(c.currentVMSA)
	if err != nil {
		return fmt.Errorf("hv: guest request: %w", err)
	}
	if h.psp == nil {
		return fmt.Errorf("hv: no PSP configured")
	}
	dataLen := int(g.SwScratch)
	if dataLen < 0 || dataLen > len(g.Payload) {
		return fmt.Errorf("hv: guest request: bad report data length %d", dataLen)
	}
	report, err := h.psp.SignReport(h.measurement, v.VMPL, g.Payload[:dataLen])
	if err != nil {
		return fmt.Errorf("hv: PSP: %w", err)
	}
	if len(report) > len(g.Payload) {
		return fmt.Errorf("hv: report too large (%d bytes)", len(report))
	}
	g.SwScratch = uint64(len(report))
	copy(g.Payload[:], report)
	return h.m.HVWriteGHCB(ghcbPhys, g)
}

// VMCall models a plain exit on a non-SNP VM (~1100 cycles on the paper's
// machine); it exists for the §9.1 comparison benchmark.
func (h *Hypervisor) VMCall(vcpuID int) {
	h.m.SetObsVCPU(vcpuID)
	h.m.Clock().Charge(snp.CostVMCALL, snp.CyclesVMCALL)
	h.m.ObserveVMCall()
}

// InjectInterrupt delivers a hardware interrupt to the VCPU. This is an
// automatic exit: no guest state crosses to the host. Under Veil's
// instructions the hypervisor resumes Dom-UNT to run the OS handler; in the
// hostile RefuseRelay mode it re-enters the interrupted domain instead,
// which — if that domain is an enclave — faults on the unreachable OS
// handler and halts the CVM (Table 2 "Refuse interrupt relay").
func (h *Hypervisor) InjectInterrupt(vcpuID int) error {
	if h.m.Halted() != nil {
		return snp.ErrHalted
	}
	mode := h.interruptMode
	if h.intrModeChooser != nil {
		mode = h.intrModeChooser(vcpuID)
	}
	switch mode {
	case DropInterrupt:
		// Hostile: the host never delivers the interrupt. Nothing runs in
		// the guest and no cycles are charged; whoever was waiting on the
		// wake-up must detect the loss themselves.
		return nil
	case MisrouteVCPU:
		// Hostile: deliver to the lowest-numbered other started VCPU. The
		// relay below then proceeds normally — just on the wrong VCPU.
		vcpuID = h.otherStartedVCPU(vcpuID)
	}
	c, ok := h.vcpus[vcpuID]
	if !ok {
		return fmt.Errorf("hv: interrupt for unknown VCPU %d", vcpuID)
	}
	h.m.SetObsVCPU(vcpuID)
	h.m.Clock().Charge(snp.CostInterrupt, snp.CyclesInterrupt)
	h.m.ObserveInterrupt()
	h.chargeExit()
	interrupted := c.currentVMSA

	var target binding
	switch {
	case mode == RelayToUntrusted && h.hasIntrTarget:
		b, ok := h.bindings[c.id][h.interruptTarget]
		if !ok {
			return fmt.Errorf("hv: no interrupt target domain on VCPU %d", c.id)
		}
		target = b
	default:
		// Hostile (or unconfigured): force handling in the interrupted
		// context.
		ctx, ok := h.byVMSA[interrupted]
		if !ok {
			return fmt.Errorf("hv: interrupted VMSA %#x has no context", interrupted)
		}
		target = binding{vmsaPhys: interrupted, ctx: ctx}
	}

	c.currentVMSA = target.vmsaPhys
	h.chargeEnter()
	err := target.ctx.Invoke(ReasonInterrupt)
	h.chargeExit()
	c.currentVMSA = interrupted
	h.chargeEnter()
	return err
}

// otherStartedVCPU returns the lowest-numbered started VCPU other than id,
// or id itself when it is the only one. The map is never iterated without
// sorting, so hostile misrouting is as deterministic as honest delivery.
func (h *Hypervisor) otherStartedVCPU(id int) int {
	ids := make([]int, 0, len(h.vcpus))
	for i, c := range h.vcpus {
		if c.started && i != id {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		return id
	}
	sort.Ints(ids)
	return ids[0]
}

// AttemptVMSATamper is the Table 2 hypervisor attack: try to overwrite a
// saved enclave register state. SEV-SNP keeps VMSAs in guest-assigned
// memory, so the write is blocked; the returned error is the proof.
func (h *Hypervisor) AttemptVMSATamper(vmsaPhys uint64) error {
	evil := make([]byte, 8) // would-be rip overwrite
	return h.m.HVWritePhys(vmsaPhys, evil)
}

// AttemptMemoryRead is the classic direct attack: the host reads guest
// memory. Blocked for assigned pages.
func (h *Hypervisor) AttemptMemoryRead(phys uint64, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := h.m.HVReadPhys(phys, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
