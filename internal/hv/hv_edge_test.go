package hv

import (
	"strings"
	"testing"

	"veil/internal/snp"
)

func TestStartVCPUDoubleStartRejected(t *testing.T) {
	h := newHarness(t)
	phys := uint64(pgDonate) * snp.PageSize
	gs := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1<<1 | 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, gs); err != nil {
		t.Fatal(err)
	}
	if err := h.m.PValidate(snp.VMPL0, phys, true); err != nil {
		t.Fatal(err)
	}
	if err := h.m.CreateVMSA(snp.VMPL0, phys, snp.VMSA{VCPUID: 1, VMPL: snp.VMPL3}); err != nil {
		t.Fatal(err)
	}
	h.hv.BindContext(phys, ContextFunc(func(Reason) error { return nil }))
	g := &snp.GHCB{ExitCode: ExitStartVCPU, ExitInfo1: phys}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	g = &snp.GHCB{ExitCode: ExitStartVCPU, ExitInfo1: phys}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestStartVCPUUnknownVMSA(t *testing.T) {
	h := newHarness(t)
	g := &snp.GHCB{ExitCode: ExitStartVCPU, ExitInfo1: pgScratch * snp.PageSize}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err == nil {
		t.Fatal("start of non-VMSA page accepted")
	}
}

func TestUnknownExitCode(t *testing.T) {
	h := newHarness(t)
	g := &snp.GHCB{ExitCode: 0xDEAD_BEEF}
	err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g)
	if err == nil || !strings.Contains(err.Error(), "unknown exit code") {
		t.Fatalf("err = %v", err)
	}
}

func TestVMGEXITFromUnknownVCPU(t *testing.T) {
	h := newHarness(t)
	if err := h.hv.VMGEXIT(7); err == nil {
		t.Fatal("exit from unstarted VCPU accepted")
	}
}

func TestGuestRequestBadLength(t *testing.T) {
	h := newHarness(t)
	g := &snp.GHCB{ExitCode: ExitGuestRequest, SwScratch: uint64(len(snp.GHCB{}.Payload) + 1)}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err == nil {
		t.Fatal("oversized report data accepted")
	}
}

func TestGuestRequestWithoutPSP(t *testing.T) {
	m := snp.NewMachine(snp.Config{MemBytes: 8 * snp.PageSize, VCPUs: 1})
	hyp := New(m, nil) // no PSP
	boot := ContextFunc(func(r Reason) error {
		return m.WriteGHCBMSR(0, snp.CPL0, 1*snp.PageSize)
	})
	if err := hyp.Launch(nil, 0, snp.VMSA{VCPUID: 0, VMPL: snp.VMPL0}, 1, boot); err != nil {
		t.Fatal(err)
	}
	g := &snp.GHCB{ExitCode: ExitGuestRequest, SwScratch: 4}
	if err := hyp.GuestCall(0, snp.VMPL0, snp.CPL0, 1*snp.PageSize, g); err == nil {
		t.Fatal("attestation without a PSP succeeded")
	}
}

func TestResumeValidation(t *testing.T) {
	h := newHarness(t)
	if err := h.hv.Resume(9, pgBootVMSA); err == nil {
		t.Fatal("resume of unknown VCPU accepted")
	}
	if err := h.hv.Resume(0, pgScratch*snp.PageSize); err == nil {
		t.Fatal("resume onto a non-VMSA page accepted")
	}
	if err := h.hv.Resume(0, pgOSVMSA*snp.PageSize); err != nil {
		t.Fatal(err)
	}
	cur, _ := h.hv.CurrentVMSA(0)
	if cur != pgOSVMSA*snp.PageSize {
		t.Fatal("resume did not switch the current VMSA")
	}
}

func TestInterruptWithoutTargetHitsCurrent(t *testing.T) {
	h := newHarness(t)
	// No relay configuration at all: the interrupted context handles it.
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.monCalls) != 1 || h.monCalls[0] != ReasonInterrupt {
		t.Fatalf("monitor calls = %v", h.monCalls)
	}
}

func TestPageStateReclaimPath(t *testing.T) {
	h := newHarness(t)
	phys := uint64(pgDonate) * snp.PageSize
	// Assign, validate, then invalidate and reclaim.
	g := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1<<1 | 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if err := h.m.PValidate(snp.VMPL0, phys, true); err != nil {
		t.Fatal(err)
	}
	// Reclaim of a validated page must fail (count lands in SwScratch).
	g = &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1 << 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if g.SwScratch != 1 {
		t.Fatalf("reclaim of validated page reported %d failures, want 1", g.SwScratch)
	}
	// After invalidation the reclaim succeeds.
	if err := h.m.PValidate(snp.VMPL0, phys, false); err != nil {
		t.Fatal(err)
	}
	g = &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1 << 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if g.SwScratch != 0 {
		t.Fatalf("reclaim failed: %d", g.SwScratch)
	}
	e, _ := h.m.RMPEntryAt(phys)
	if e.Assigned {
		t.Fatal("page still assigned after reclaim")
	}
}
