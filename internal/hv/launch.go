package hv

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"veil/internal/snp"
)

// LaunchRegion is one measured piece of the CVM boot image: data placed at
// a fixed guest-physical address before the guest runs.
type LaunchRegion struct {
	Phys uint64
	Data []byte
}

// Launch boots the CVM: it loads and measures the boot-image regions (the
// SHA-256 over addresses and contents is the launch digest later attested
// to remote users, §5.1), creates the boot VCPU's VMSA — which the
// architecture pins at VMPL0, so under Veil the entry context is VeilMon,
// not the kernel — and synchronously runs the boot context.
//
// bootTag registers the boot context for subsequent domain switches.
func (h *Hypervisor) Launch(regions []LaunchRegion, bootVMSAPhys uint64, boot snp.VMSA, bootTag DomainTag, ctx Context) error {
	if h.launched {
		return fmt.Errorf("hv: CVM already launched")
	}
	hash := sha256.New()
	for _, r := range regions {
		var addr [8]byte
		binary.LittleEndian.PutUint64(addr[:], r.Phys)
		hash.Write(addr[:])
		hash.Write(r.Data)
		if err := h.m.LaunchLoad(r.Phys, r.Data); err != nil {
			return fmt.Errorf("hv: launch load at %#x: %w", r.Phys, err)
		}
	}
	copy(h.measurement[:], hash.Sum(nil))

	boot.VMPL = snp.VMPL0
	if err := h.m.HVCreateBootVMSA(bootVMSAPhys, boot); err != nil {
		return fmt.Errorf("hv: boot VMSA: %w", err)
	}
	h.launched = true
	h.vcpus[boot.VCPUID] = &vcpu{id: boot.VCPUID, currentVMSA: bootVMSAPhys, started: true}
	h.BindContext(bootVMSAPhys, ctx)
	h.bindings[boot.VCPUID] = map[DomainTag]binding{bootTag: {vmsaPhys: bootVMSAPhys, ctx: ctx}}

	h.m.SetObsVCPU(boot.VCPUID)
	h.m.Clock().Charge(snp.CostVMENTER, snp.CyclesVMENTERRestore)
	h.m.ObserveVMENTER()
	return ctx.Invoke(ReasonBoot)
}

// BindContext associates guest software (a Go handler standing in for the
// code at the VMSA's saved rip) with a VMSA page. This is simulation
// wiring, not a protocol step: the binding is established by whoever wrote
// the VMSA — under Veil, only VeilMon can do that (snp.CreateVMSA enforces
// VMPL0).
func (h *Hypervisor) BindContext(vmsaPhys uint64, ctx Context) {
	h.byVMSA[vmsaPhys] = ctx
}

// SetGHCBPolicy restricts the set of domain tags reachable through the GHCB
// page at ghcbPhys. VeilS-Enc instructs the hypervisor to allow only
// Dom-UNT↔Dom-ENC switches on user-mapped GHCBs (§6.2). The hypervisor is
// untrusted, but following this instruction is in the host's own interest
// (errant switches crash the CVM); hostile deviation is exercised in tests.
func (h *Hypervisor) SetGHCBPolicy(ghcbPhys uint64, tags ...DomainTag) {
	set := make(map[DomainTag]bool, len(tags))
	for _, t := range tags {
		set[t] = true
	}
	h.ghcbPolicy[ghcbPhys] = set
}

// SetInterruptRelay configures what the hypervisor does with automatic
// exits taken while a non-OS domain runs: Veil instructs RelayToUntrusted
// with the OS's tag (§6.2); RefuseRelay is the Table 2 attack mode.
func (h *Hypervisor) SetInterruptRelay(mode InterruptMode, target DomainTag) {
	h.interruptMode = mode
	h.interruptTarget = target
	h.hasIntrTarget = true
}

// CurrentVMSA returns the VMSA the given VCPU is executing (bookkeeping the
// real host keeps in struct vcpu_svm).
func (h *Hypervisor) CurrentVMSA(vcpuID int) (uint64, bool) {
	c, ok := h.vcpus[vcpuID]
	if !ok {
		return 0, false
	}
	return c.currentVMSA, true
}

// Resume marks vmsaPhys as the VCPU's steady-state instance. The simulation
// uses it after boot completes: nested boot calls have unwound, but the
// system's resting context is the OS domain, and attestation requests must
// reflect the VMPL of whoever is actually running.
func (h *Hypervisor) Resume(vcpuID int, vmsaPhys uint64) error {
	c, ok := h.vcpus[vcpuID]
	if !ok {
		return fmt.Errorf("hv: resume of unknown VCPU %d", vcpuID)
	}
	if _, err := h.m.VMSAAt(vmsaPhys); err != nil {
		return err
	}
	c.currentVMSA = vmsaPhys
	return nil
}
