package hv

import "testing"

func TestInterruptModeString(t *testing.T) {
	cases := map[InterruptMode]string{
		RelayToUntrusted:  "relay-to-untrusted",
		RefuseRelay:       "refuse-relay",
		MisrouteVCPU:      "misroute-vcpu",
		DropInterrupt:     "drop-interrupt",
		InterruptMode(99): "interrupt-mode(?)",
		InterruptMode(-1): "interrupt-mode(?)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("InterruptMode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

// The per-delivery chooser overrides the static mode once per injection:
// a host that drops the first interrupt and relays the second honestly.
func TestInterruptModeChooserPerDelivery(t *testing.T) {
	h := newHarness(t)
	h.hv.SetInterruptRelay(RelayToUntrusted, tagOS)

	deliveries := 0
	h.hv.SetInterruptModeChooser(func(vcpuID int) InterruptMode {
		deliveries++
		if deliveries == 1 {
			return DropInterrupt
		}
		return RelayToUntrusted
	})

	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.osCalls) != 0 {
		t.Fatalf("dropped delivery ran the OS handler: %v", h.osCalls)
	}
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.osCalls) != 1 || h.osCalls[0] != ReasonInterrupt {
		t.Fatalf("honest delivery after a dropped one: OS calls %v", h.osCalls)
	}
	if deliveries != 2 {
		t.Fatalf("chooser consulted %d times, want once per delivery", deliveries)
	}

	// nil restores the static mode.
	h.hv.SetInterruptModeChooser(nil)
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.osCalls) != 2 {
		t.Fatalf("static mode not restored: OS calls %v", h.osCalls)
	}
}
