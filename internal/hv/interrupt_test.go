package hv

import (
	"errors"
	"testing"

	"veil/internal/snp"
)

// Satellite coverage for InjectInterrupt's hostile modes, driven directly
// at the hypervisor (the attack suites exercise the same modes through a
// whole CVM; these pin the relay mechanics in isolation).

// RefuseRelay must force the interrupt into the interrupted domain. The
// harness stands in for a protected domain: its OS interrupt vector is
// unreachable, so handling the interrupt there is an exec #NPF and the CVM
// halts — the Table 2 defence, observed end to end from one InjectInterrupt.
func TestRefuseRelayForcesInterruptedDomainAndHalts(t *testing.T) {
	h := newHarness(t)
	const osHandlerVirt = 0x0000_7FFF_FF00_0000
	h.hv.BindContext(pgBootVMSA*snp.PageSize, ContextFunc(func(r Reason) error {
		if r != ReasonInterrupt {
			return nil
		}
		f := &snp.Fault{Kind: snp.FaultNPF, VMPL: snp.VMPL0, CPL: snp.CPL0,
			Access: snp.AccessExec, Virt: osHandlerVirt,
			Why: "interrupt vector unreachable from interrupted domain (refused relay)"}
		return h.m.Halt(f)
	}))
	h.hv.SetInterruptRelay(RefuseRelay, tagOS)

	err := h.hv.InjectInterrupt(0)
	if err == nil {
		t.Fatal("refused relay did not surface the halt")
	}
	f := h.m.Halted()
	if f == nil {
		t.Fatal("CVM not halted")
	}
	if f.Kind != snp.FaultNPF || f.Virt != osHandlerVirt {
		t.Fatalf("halt fault = %+v, want exec #NPF at the OS handler", f)
	}
	if len(h.osCalls) != 0 {
		t.Fatalf("OS handler ran despite refused relay: %v", h.osCalls)
	}
	// The halt is terminal: later injections fail fast, nothing more runs.
	if err := h.hv.InjectInterrupt(0); !errors.Is(err, snp.ErrHalted) {
		t.Fatalf("post-halt injection = %v, want ErrHalted", err)
	}
}

// DropInterrupt must be a perfect swallow: no guest context runs and no
// cycles are charged — exactly the silence the scheduler has to detect.
func TestDropInterruptDeliversNothing(t *testing.T) {
	h := newHarness(t)
	h.hv.SetInterruptRelay(DropInterrupt, tagOS)
	clk := h.m.Clock().Snapshot()
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if n := len(h.monCalls) + len(h.osCalls); n != 0 {
		t.Fatalf("%d guest contexts ran on a dropped interrupt", n)
	}
	if d := h.m.Clock().Since(clk); d != 0 {
		t.Fatalf("dropped interrupt charged %d cycles", d)
	}
}

// With no other started VCPU to misroute to, MisrouteVCPU degrades to
// delivery on the original VCPU — and since the mode is not
// RelayToUntrusted, the interrupted domain takes the interrupt.
func TestMisrouteVCPUWithNoPeerHitsInterruptedDomain(t *testing.T) {
	h := newHarness(t)
	h.hv.SetInterruptRelay(MisrouteVCPU, tagOS)
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.monCalls) != 1 || h.monCalls[0] != ReasonInterrupt {
		t.Fatalf("monitor calls: %v", h.monCalls)
	}
	if len(h.osCalls) != 0 {
		t.Fatal("OS resumed despite misroute mode")
	}
}

// Misrouting picks its victim deterministically: lowest-numbered other
// started VCPU, regardless of map iteration order.
func TestOtherStartedVCPUDeterministic(t *testing.T) {
	h := &Hypervisor{vcpus: map[int]*vcpu{
		0: {id: 0, started: true},
		1: {id: 1, started: true},
		2: {id: 2, started: false},
		3: {id: 3, started: true},
	}}
	for i := 0; i < 32; i++ {
		if got := h.otherStartedVCPU(0); got != 1 {
			t.Fatalf("otherStartedVCPU(0) = %d, want 1 (lowest started peer)", got)
		}
		if got := h.otherStartedVCPU(1); got != 0 {
			t.Fatalf("otherStartedVCPU(1) = %d, want 0", got)
		}
		if got := h.otherStartedVCPU(2); got != 0 {
			t.Fatalf("otherStartedVCPU(2) = %d, want 0", got)
		}
	}
	solo := &Hypervisor{vcpus: map[int]*vcpu{5: {id: 5, started: true}}}
	if got := solo.otherStartedVCPU(5); got != 5 {
		t.Fatalf("sole VCPU misrouted to %d, want itself", got)
	}
}
