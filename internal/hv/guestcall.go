package hv

import "veil/internal/snp"

// GuestCall is the guest-side hypercall sequence of Fig. 1: write the
// request into the GHCB at ghcbPhys (as software at vmpl/cpl — the RMP
// check applies), VMGEXIT, and read the host's reply back from the GHCB.
//
// The caller must have had the GHCB MSR set to ghcbPhys for this VCPU; for
// kernel GHCBs the kernel does that itself at CPL0, for user-mapped enclave
// GHCBs the OS does it before scheduling the process (§6.2).
func (h *Hypervisor) GuestCall(vcpuID int, vmpl snp.VMPL, cpl snp.CPL, ghcbPhys uint64, g *snp.GHCB) error {
	if err := h.m.GuestWriteGHCB(vmpl, cpl, ghcbPhys, g); err != nil {
		return err
	}
	if err := h.VMGEXIT(vcpuID); err != nil {
		return err
	}
	return h.m.GuestReadGHCB(vmpl, cpl, ghcbPhys, g)
}
