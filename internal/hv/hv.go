// Package hv models the untrusted host hypervisor of a SEV-SNP deployment.
//
// It implements the paper's three KVM-side changes (§7): maintaining VMSAs
// for newly-created domains, hypercall routines for hypervisor-relayed
// domain switches (§5.2, Fig. 3), and relaying automatic interrupt exits
// from enclave domains to the untrusted domain (§6.2).
//
// The hypervisor is *outside* the CVM trust boundary. Its view of guest
// memory goes through the machine's HV accessors, which enforce SEV-SNP's
// confidentiality and integrity guarantees; tests drive the hostile modes
// (VMSA tampering, interrupt-relay refusal) to validate Table 2.
package hv

import (
	"errors"

	"veil/internal/snp"
)

// DomainTag identifies a switch target to the hypervisor. Tags are opaque
// to the hypervisor; the Veil framework defines their meaning (the core
// package uses one tag per privilege domain).
type DomainTag uint64

// Reason tells a guest context why it was entered.
type Reason int

const (
	// ReasonBoot is the first entry of a fresh VCPU instance.
	ReasonBoot Reason = iota
	// ReasonService is a hypervisor-relayed domain switch (the target
	// should consult its IDCB for the request).
	ReasonService
	// ReasonInterrupt is an interrupt delivery (only the domain that the
	// hypervisor chooses to resume sees it; under Veil's instructions that
	// is Dom-UNT).
	ReasonInterrupt
	// ReasonDoorbell is a batched-ring doorbell: the target should drain
	// its submission ring rather than consult the IDCB.
	ReasonDoorbell
)

func (r Reason) String() string {
	switch r {
	case ReasonBoot:
		return "boot"
	case ReasonService:
		return "service"
	case ReasonInterrupt:
		return "interrupt"
	case ReasonDoorbell:
		return "doorbell"
	}
	return "reason(?)"
}

// Context is the guest software bound to one VMSA. Invoke is called after
// VMENTER; when it returns, the hypervisor performs the switch back to the
// exiting instance. This call/return structure models the paper's
// exit/enter pairs while keeping the simulation synchronous.
type Context interface {
	Invoke(reason Reason) error
}

// ContextFunc adapts a function to the Context interface.
type ContextFunc func(reason Reason) error

// Invoke calls f.
func (f ContextFunc) Invoke(reason Reason) error { return f(reason) }

// GHCB exit codes understood by this hypervisor (the SW_EXITCODE space).
const (
	// ExitDomainSwitch requests a switch to the domain in ExitInfo1.
	ExitDomainSwitch uint64 = 0x8000_1001
	// ExitRegisterVMSA registers the VMSA at ExitInfo1 under the tag in
	// ExitInfo2 for the exiting VCPU ("maintain VMSAs for newly-created
	// domains", §7).
	ExitRegisterVMSA uint64 = 0x8000_1002
	// ExitStartVCPU asks the hypervisor to begin executing the VCPU whose
	// boot VMSA is in ExitInfo1 (AP boot / hotplug, §5.3).
	ExitStartVCPU uint64 = 0x8000_1003
	// ExitPageState requests a page-state change: ExitInfo1 = first page
	// physical address, ExitInfo2 = page count<<1 | op (1 = assign to
	// guest, 0 = reclaim/share).
	ExitPageState uint64 = 0x8000_1004
	// ExitGuestRequest relays an attestation report request to the PSP.
	// The payload carries the report data; the response overwrites it.
	ExitGuestRequest uint64 = 0x8000_1005
	// ExitIO is a generic device-I/O exit (contents are opaque here).
	ExitIO uint64 = 0x8000_1006
	// ExitRingDoorbell requests a switch to the domain in ExitInfo1 to
	// drain its service submission ring. Architecturally identical to
	// ExitDomainSwitch — one exit/enter pair each way — but the target is
	// entered with ReasonDoorbell so it drains the whole batch instead of
	// serving a single IDCB request.
	ExitRingDoorbell uint64 = 0x8000_1007
)

// InterruptMode selects how the hypervisor treats automatic exits taken
// while a non-OS domain runs.
type InterruptMode int

const (
	// RelayToUntrusted follows Veil's instructions: interrupts taken
	// during enclave execution resume Dom-UNT for handling (§6.2).
	RelayToUntrusted InterruptMode = iota
	// RefuseRelay is the hostile mode of Table 2: the hypervisor forces
	// interrupt handling in the interrupted (enclave) domain. Because the
	// OS interrupt handler is unmapped/unexecutable there, the CVM halts
	// with #NPF — the defence the paper describes.
	RefuseRelay
	// MisrouteVCPU is a second hostile mode: the host delivers the
	// interrupt to a different VCPU than the one the device targeted. The
	// wrong VCPU's OS handler runs (harmlessly); the intended VCPU never
	// sees its completion wake-up. The guest cannot prevent this — the
	// SMP scheduler must detect the lost wake-up and refuse to keep
	// scheduling rather than deadlock.
	MisrouteVCPU
	// DropInterrupt is the quietest hostile mode: the host swallows the
	// injection entirely. Nothing executes in the guest; as with
	// MisrouteVCPU, detection is the scheduler's job.
	DropInterrupt

	// NumInterruptModes is the delivery-mode catalog size (the model
	// checker enumerates all of them per injected interrupt).
	NumInterruptModes
)

var interruptModeNames = [NumInterruptModes]string{
	"relay-to-untrusted", "refuse-relay", "misroute-vcpu", "drop-interrupt",
}

// String returns the delivery mode's catalog name, so counterexample
// traces and attack evidence read "drop-interrupt" instead of "3".
func (m InterruptMode) String() string {
	if m >= 0 && m < NumInterruptModes {
		return interruptModeNames[m]
	}
	return "interrupt-mode(?)"
}

// AttestationSigner abstracts the AMD PSP: it signs attestation reports
// binding the launch measurement, the requesting VMPL, and caller-chosen
// report data. The hypervisor relays requests to it but cannot forge its
// signatures.
type AttestationSigner interface {
	SignReport(measurement [32]byte, vmpl snp.VMPL, reportData []byte) ([]byte, error)
}

// ErrNoGHCB indicates the exiting VCPU had no (readable) GHCB; on real
// hardware this terminates the guest.
var ErrNoGHCB = errors.New("hv: VMGEXIT without readable GHCB")

// ErrPolicy indicates a domain-switch request violated the GHCB policy the
// guest installed; the hypervisor refuses and the CVM effectively crashes
// on the attempted switch (§6.2).
var ErrPolicy = errors.New("hv: domain switch violates GHCB policy")

type vcpu struct {
	id          int
	currentVMSA uint64
	started     bool
}

type binding struct {
	vmsaPhys uint64
	ctx      Context
}

// Hypervisor is the host-side VM monitor for one CVM.
type Hypervisor struct {
	m   *snp.Machine
	psp AttestationSigner

	measurement [32]byte
	launched    bool

	vcpus    map[int]*vcpu
	bindings map[int]map[DomainTag]binding // per VCPU: tag → VMSA+context
	byVMSA   map[uint64]Context

	// ghcbPolicy restricts, per GHCB page, which tags may be switched to
	// through it. Nil entry = unrestricted (kernel GHCBs).
	ghcbPolicy map[uint64]map[DomainTag]bool

	interruptMode   InterruptMode
	interruptTarget DomainTag
	hasIntrTarget   bool
	// intrModeChooser, when set, is consulted once per InjectInterrupt for
	// that one delivery's mode, overriding interruptMode. The hostile host
	// is not obliged to be consistently hostile: the model checker uses
	// this to enumerate per-delivery delivery choices.
	intrModeChooser func(vcpuID int) InterruptMode
}

// SetInterruptModeChooser installs fn, consulted at every InjectInterrupt
// for the delivery mode of that single interrupt. It models a host that
// picks a fresh stance per delivery — relay this one honestly, swallow the
// next — which is exactly the adversary the model checker enumerates. A
// nil fn restores the static SetInterruptRelay mode.
func (h *Hypervisor) SetInterruptModeChooser(fn func(vcpuID int) InterruptMode) {
	h.intrModeChooser = fn
}

// New creates a hypervisor for machine m using psp for report signing.
func New(m *snp.Machine, psp AttestationSigner) *Hypervisor {
	return &Hypervisor{
		m:          m,
		psp:        psp,
		vcpus:      make(map[int]*vcpu),
		bindings:   make(map[int]map[DomainTag]binding),
		byVMSA:     make(map[uint64]Context),
		ghcbPolicy: make(map[uint64]map[DomainTag]bool),
	}
}

// Machine returns the underlying machine (the host owns the hardware).
func (h *Hypervisor) Machine() *snp.Machine { return h.m }

// Measurement returns the launch digest recorded at Launch.
func (h *Hypervisor) Measurement() [32]byte { return h.measurement }
