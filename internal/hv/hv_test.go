package hv

import (
	"errors"
	"math/rand"
	"testing"

	"veil/internal/attest"
	"veil/internal/snp"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// Fixed test layout (page numbers).
const (
	pgBootVMSA = 0 // boot (VMPL0) VMSA
	pgMonGHCB  = 1 // shared GHCB for the monitor context
	pgOSVMSA   = 2 // OS (VMPL3) replica VMSA
	pgOSGHCB   = 3 // shared GHCB for the OS context
	pgScratch  = 4 // guest-private scratch page
	pgDonate   = 6 // page the host donates during the test
	testPages  = 16
	tagMon     = DomainTag(100)
	tagOS      = DomainTag(103)
)

type harness struct {
	m  *snp.Machine
	hv *Hypervisor
	// recorded invocations
	bootRan  bool
	monCalls []Reason
	osCalls  []Reason
}

// newHarness launches a minimal "Veil-shaped" guest: a VMPL0 boot context
// (standing in for VeilMon) that creates a VMPL3 OS replica and registers
// both with the hypervisor.
func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{}
	h.m = snp.NewMachine(snp.Config{MemBytes: testPages * snp.PageSize, VCPUs: 1})
	psp, err := attest.NewPSP(detRand{r: rand.New(rand.NewSource(42))})
	if err != nil {
		t.Fatal(err)
	}
	h.hv = New(h.m, psp)

	monCtx := ContextFunc(func(r Reason) error {
		if r == ReasonBoot {
			h.bootRan = true
			return h.bootMonitor(t)
		}
		h.monCalls = append(h.monCalls, r)
		return nil
	})
	image := []LaunchRegion{{Phys: pgScratch * snp.PageSize, Data: []byte("veilmon image")}}
	boot := snp.VMSA{VCPUID: 0, VMPL: snp.VMPL0, CPL: snp.CPL0, RIP: 0x100}
	if err := h.hv.Launch(image, pgBootVMSA*snp.PageSize, boot, tagMon, monCtx); err != nil {
		t.Fatalf("launch: %v", err)
	}
	return h
}

// bootMonitor is the boot context body: set up GHCB, create + register the
// OS replica VMSA. It runs "inside" the guest at VMPL0/CPL0.
func (h *harness) bootMonitor(t *testing.T) error {
	m, hv := h.m, h.hv
	// GHCB MSR for VCPU 0 points at the monitor's shared GHCB page.
	if err := m.WriteGHCBMSR(0, snp.CPL0, pgMonGHCB*snp.PageSize); err != nil {
		return err
	}
	// Ask the host to assign the OS VMSA page, then validate it.
	g := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: pgOSVMSA * snp.PageSize, ExitInfo2: 1<<1 | 1}
	if err := hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		return err
	}
	if g.SwScratch != 0 {
		t.Fatalf("page state change failed for %d pages", g.SwScratch)
	}
	if err := m.PValidate(snp.VMPL0, pgOSVMSA*snp.PageSize, true); err != nil {
		return err
	}
	// Create the OS replica at VMPL3 and bind its context.
	osVMSA := snp.VMSA{VCPUID: 0, VMPL: snp.VMPL3, CPL: snp.CPL0, RIP: 0x200, Runnable: true}
	if err := m.CreateVMSA(snp.VMPL0, pgOSVMSA*snp.PageSize, osVMSA); err != nil {
		return err
	}
	hv.BindContext(pgOSVMSA*snp.PageSize, ContextFunc(func(r Reason) error {
		h.osCalls = append(h.osCalls, r)
		return nil
	}))
	g = &snp.GHCB{ExitCode: ExitRegisterVMSA, ExitInfo1: pgOSVMSA * snp.PageSize, ExitInfo2: uint64(tagOS)}
	return hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g)
}

func TestLaunchRunsBootAndMeasures(t *testing.T) {
	h := newHarness(t)
	if !h.bootRan {
		t.Fatal("boot context did not run")
	}
	want := attest.MeasureRegions([]attest.Region{{Phys: pgScratch * snp.PageSize, Data: []byte("veilmon image")}})
	if h.hv.Measurement() != want {
		t.Fatal("launch measurement mismatch with attest.MeasureRegions")
	}
	// The measured image content is in guest memory.
	buf := make([]byte, 7)
	if err := h.m.GuestReadPhys(snp.VMPL0, snp.CPL0, pgScratch*snp.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "veilmon" {
		t.Fatalf("image content %q", buf)
	}
}

func TestDoubleLaunchRejected(t *testing.T) {
	h := newHarness(t)
	err := h.hv.Launch(nil, pgScratch*snp.PageSize, snp.VMSA{}, tagMon, ContextFunc(func(Reason) error { return nil }))
	if err == nil {
		t.Fatal("second launch accepted")
	}
}

func TestDomainSwitchRoundTripCostAndTrace(t *testing.T) {
	h := newHarness(t)
	clk := h.m.Clock().Snapshot()
	tr := h.m.Trace().Snapshot()

	g := &snp.GHCB{ExitCode: ExitDomainSwitch, ExitInfo1: uint64(tagOS)}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if len(h.osCalls) != 1 || h.osCalls[0] != ReasonService {
		t.Fatalf("OS context calls: %v", h.osCalls)
	}
	d := h.m.Trace().Since(tr)
	if d.DomainSwitches != 2 {
		t.Fatalf("DomainSwitches = %d, want 2 (there and back)", d.DomainSwitches)
	}
	if d.VMGExits != 2 || d.VMEnters != 2 {
		t.Fatalf("exits/enters = %d/%d, want 2/2", d.VMGExits, d.VMEnters)
	}
	gotCycles := h.m.Clock().Since(clk)
	if gotCycles != 2*snp.CyclesDomainSwitch {
		t.Fatalf("round trip cost = %d cycles, want %d", gotCycles, 2*snp.CyclesDomainSwitch)
	}
}

func TestSwitchDuringSwitchNests(t *testing.T) {
	h := newHarness(t)
	// Rebind the OS context so that, when invoked, it switches back into
	// the monitor (nested service request), like the kernel asking VeilMon
	// for a PVALIDATE while handling something else.
	h.hv.BindContext(pgOSVMSA*snp.PageSize, ContextFunc(func(r Reason) error {
		h.osCalls = append(h.osCalls, r)
		if err := h.m.WriteGHCBMSR(0, snp.CPL0, pgOSGHCB*snp.PageSize); err != nil {
			return err
		}
		g := &snp.GHCB{ExitCode: ExitDomainSwitch, ExitInfo1: uint64(tagMon)}
		return h.hv.GuestCall(0, snp.VMPL3, snp.CPL0, pgOSGHCB*snp.PageSize, g)
	}))
	// Re-register binding to pick up the new context.
	g := &snp.GHCB{ExitCode: ExitRegisterVMSA, ExitInfo1: pgOSVMSA * snp.PageSize, ExitInfo2: uint64(tagOS)}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}

	g = &snp.GHCB{ExitCode: ExitDomainSwitch, ExitInfo1: uint64(tagOS)}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if len(h.monCalls) != 1 || h.monCalls[0] != ReasonService {
		t.Fatalf("nested monitor calls: %v", h.monCalls)
	}
	cur, _ := h.hv.CurrentVMSA(0)
	if cur != pgBootVMSA*snp.PageSize {
		t.Fatalf("current VMSA after unwinding = %#x", cur)
	}
}

func TestGHCBPolicyBlocksSwitch(t *testing.T) {
	h := newHarness(t)
	// Policy: the monitor GHCB may only reach tagMon (not tagOS).
	h.hv.SetGHCBPolicy(pgMonGHCB*snp.PageSize, tagMon)
	g := &snp.GHCB{ExitCode: ExitDomainSwitch, ExitInfo1: uint64(tagOS)}
	err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g)
	if !errors.Is(err, ErrPolicy) {
		t.Fatalf("err = %v, want ErrPolicy", err)
	}
	if len(h.osCalls) != 0 {
		t.Fatal("switch happened despite policy")
	}
}

func TestGHCBOnPrivatePageFailsExit(t *testing.T) {
	h := newHarness(t)
	// Point the MSR at a guest-private page; the host cannot read it.
	if err := h.m.WriteGHCBMSR(0, snp.CPL0, pgScratch*snp.PageSize); err != nil {
		t.Fatal(err)
	}
	err := h.hv.VMGEXIT(0)
	if !errors.Is(err, ErrNoGHCB) {
		t.Fatalf("err = %v, want ErrNoGHCB", err)
	}
}

func TestUnknownDomainTag(t *testing.T) {
	h := newHarness(t)
	g := &snp.GHCB{ExitCode: ExitDomainSwitch, ExitInfo1: 999}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err == nil {
		t.Fatal("switch to unknown tag accepted")
	}
}

func TestRegisterVMSARequiresBoundContext(t *testing.T) {
	h := newHarness(t)
	// Create a second VMSA but don't bind a context.
	phys := uint64(pgDonate) * snp.PageSize
	gs := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1<<1 | 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, gs); err != nil {
		t.Fatal(err)
	}
	if err := h.m.PValidate(snp.VMPL0, phys, true); err != nil {
		t.Fatal(err)
	}
	if err := h.m.CreateVMSA(snp.VMPL0, phys, snp.VMSA{VCPUID: 0, VMPL: snp.VMPL2}); err != nil {
		t.Fatal(err)
	}
	g := &snp.GHCB{ExitCode: ExitRegisterVMSA, ExitInfo1: phys, ExitInfo2: 55}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err == nil {
		t.Fatal("register of unbound VMSA accepted")
	}
}

func TestStartVCPURunsBootReason(t *testing.T) {
	h := newHarness(t)
	phys := uint64(pgDonate) * snp.PageSize
	gs := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: phys, ExitInfo2: 1<<1 | 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, gs); err != nil {
		t.Fatal(err)
	}
	if err := h.m.PValidate(snp.VMPL0, phys, true); err != nil {
		t.Fatal(err)
	}
	if err := h.m.CreateVMSA(snp.VMPL0, phys, snp.VMSA{VCPUID: 1, VMPL: snp.VMPL3, Runnable: true}); err != nil {
		t.Fatal(err)
	}
	var apBooted bool
	h.hv.BindContext(phys, ContextFunc(func(r Reason) error {
		apBooted = r == ReasonBoot
		return nil
	}))
	g := &snp.GHCB{ExitCode: ExitStartVCPU, ExitInfo1: phys}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if !apBooted {
		t.Fatal("AP boot context did not run with ReasonBoot")
	}
	if _, ok := h.hv.CurrentVMSA(1); !ok {
		t.Fatal("VCPU 1 not tracked after start")
	}
}

func TestPageStateReportsFailures(t *testing.T) {
	h := newHarness(t)
	// pgScratch is already assigned (launch image): assigning again fails.
	g := &snp.GHCB{ExitCode: ExitPageState, ExitInfo1: pgScratch * snp.PageSize, ExitInfo2: 1<<1 | 1}
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	if g.SwScratch != 1 {
		t.Fatalf("failed count = %d, want 1", g.SwScratch)
	}
}

func TestGuestRequestBindsHardwareVMPL(t *testing.T) {
	h := newHarness(t)
	psp := h.hv.psp.(*attest.PSP)

	reportData := []byte("monitor dh key")
	g := &snp.GHCB{ExitCode: ExitGuestRequest, SwScratch: uint64(len(reportData))}
	copy(g.Payload[:], reportData)
	if err := h.hv.GuestCall(0, snp.VMPL0, snp.CPL0, pgMonGHCB*snp.PageSize, g); err != nil {
		t.Fatal(err)
	}
	rep, err := attest.VerifyReport(psp.PublicKey(), g.Payload[:g.SwScratch])
	if err != nil {
		t.Fatal(err)
	}
	if rep.VMPL != snp.VMPL0 {
		t.Fatalf("report VMPL = %v, want VMPL0 (from hardware VMSA)", rep.VMPL)
	}
	if rep.Measurement != h.hv.Measurement() {
		t.Fatal("report measurement mismatch")
	}
	if string(rep.ReportData[:len(reportData)]) != string(reportData) {
		t.Fatal("report data mismatch")
	}
}

func TestInterruptRelayToUntrusted(t *testing.T) {
	h := newHarness(t)
	h.hv.SetInterruptRelay(RelayToUntrusted, tagOS)
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.osCalls) != 1 || h.osCalls[0] != ReasonInterrupt {
		t.Fatalf("OS calls after interrupt: %v", h.osCalls)
	}
	// The interrupted (monitor) instance is current again afterwards.
	cur, _ := h.hv.CurrentVMSA(0)
	if cur != pgBootVMSA*snp.PageSize {
		t.Fatalf("current VMSA = %#x after interrupt", cur)
	}
}

func TestInterruptRefuseRelayHitsCurrentDomain(t *testing.T) {
	h := newHarness(t)
	h.hv.SetInterruptRelay(RefuseRelay, tagOS)
	// The current domain is the monitor; its context sees the interrupt.
	if err := h.hv.InjectInterrupt(0); err != nil {
		t.Fatal(err)
	}
	if len(h.monCalls) != 1 || h.monCalls[0] != ReasonInterrupt {
		t.Fatalf("monitor calls: %v", h.monCalls)
	}
	if len(h.osCalls) != 0 {
		t.Fatal("OS should not have been resumed in RefuseRelay mode")
	}
}

func TestHostileVMSATamperBlocked(t *testing.T) {
	h := newHarness(t)
	if err := h.hv.AttemptVMSATamper(pgOSVMSA * snp.PageSize); err == nil {
		t.Fatal("hypervisor tampered with a VMSA")
	}
	if _, err := h.hv.AttemptMemoryRead(pgScratch*snp.PageSize, 16); err == nil {
		t.Fatal("hypervisor read guest-private memory")
	}
}

func TestVMCallCost(t *testing.T) {
	h := newHarness(t)
	clk := h.m.Clock().Snapshot()
	h.hv.VMCall(0)
	if got := h.m.Clock().Since(clk); got != snp.CyclesVMCALL {
		t.Fatalf("VMCALL cost = %d, want %d", got, snp.CyclesVMCALL)
	}
	if h.m.Trace().VMCalls != 1 {
		t.Fatal("VMCalls not counted")
	}
}

func TestVMGEXITAfterHaltReturnsErrHalted(t *testing.T) {
	h := newHarness(t)
	// Halt the CVM via an RMP violation.
	if err := h.m.RMPAdjust(snp.VMPL0, pgScratch*snp.PageSize, snp.VMPL3, snp.PermNone); err != nil {
		t.Fatal(err)
	}
	if err := h.m.GuestWritePhys(snp.VMPL3, snp.CPL0, pgScratch*snp.PageSize, []byte{1}); !snp.IsNPF(err) {
		t.Fatalf("expected #NPF, got %v", err)
	}
	if err := h.hv.VMGEXIT(0); !errors.Is(err, snp.ErrHalted) {
		t.Fatalf("VMGEXIT after halt: %v", err)
	}
	if err := h.hv.InjectInterrupt(0); !errors.Is(err, snp.ErrHalted) {
		t.Fatalf("interrupt after halt: %v", err)
	}
}

func TestReasonStrings(t *testing.T) {
	if ReasonBoot.String() != "boot" || ReasonService.String() != "service" || ReasonInterrupt.String() != "interrupt" {
		t.Fatal("reason strings")
	}
}
