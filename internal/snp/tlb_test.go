package snp

// Differential testing of the software TLB: the cached translator must be
// observationally identical to the cache-free reference walker across
// arbitrary interleavings of translations, PTE rewrites, RMPADJUST calls
// and full flushes. Any divergence — in physical address, fault kind or
// fault reason — is a staleness or aliasing bug in the TLB.

import (
	"fmt"
	"math/rand"
	"testing"
)

// diffWorld is a machine with two 64-page mapped groups in separate leaf
// tables (so per-table-page invalidation has more than one target) plus the
// table pages used to reach them.
type diffWorld struct {
	m     *Machine
	ctx   AccessContext // VMPL0/CPL0 over cr3
	cr3   uint64
	leafA uint64 // leaf table covering group A (virt 0..64 pages)
	leafB uint64 // leaf table covering group B (virt 2MiB..+64 pages)
	l1    uint64 // level-1 table pointing at both leaves
}

const (
	diffGroupPages = 64
	diffGroupBVirt = uint64(2 << 20) // second 2MiB slot: next leaf table
)

func diffVirt(group, i int) uint64 {
	if group == 0 {
		return uint64(i) * PageSize
	}
	return diffGroupBVirt + uint64(i)*PageSize
}

func diffPhys(group, i int) uint64 {
	return uint64(group*diffGroupPages+i) * PageSize
}

func buildDiffWorld(tb testing.TB) *diffWorld {
	tb.Helper()
	const memBytes = 2 << 20
	m := NewMachine(Config{MemBytes: memBytes, VCPUs: 1})
	for p := uint64(0); p < memBytes; p += PageSize {
		if err := m.HVAssignPage(p); err != nil {
			tb.Fatal(err)
		}
		if err := m.PValidate(VMPL0, p, true); err != nil {
			tb.Fatal(err)
		}
	}
	next := uint64(256) * PageSize
	alloc := func() uint64 {
		p := next
		next += PageSize
		return p
	}
	w := &diffWorld{m: m, cr3: alloc()}
	w.ctx = AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: w.cr3}
	// cr3 → L2 → L1 → {leafA, leafB}; all virts share the top 2 indices.
	l2, l1 := alloc(), alloc()
	w.l1, w.leafA, w.leafB = l1, alloc(), alloc()
	inter := uint64(PTEPresent | PTEWrite | PTEUser)
	must := func(err error) {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(w.ctx.WritePTE(w.cr3, 0, MakePTE(l2, inter)))
	must(w.ctx.WritePTE(l2, 0, MakePTE(l1, inter)))
	must(w.ctx.WritePTE(l1, 0, MakePTE(w.leafA, inter)))
	must(w.ctx.WritePTE(l1, 1, MakePTE(w.leafB, inter)))
	for g := 0; g < 2; g++ {
		leaf := w.leafA
		if g == 1 {
			leaf = w.leafB
		}
		for i := 0; i < diffGroupPages; i++ {
			must(w.ctx.WritePTE(leaf, uint64(i), MakePTE(diffPhys(g, i), inter)))
		}
	}
	return w
}

// checkOne compares the cached and reference walkers for a single
// (virt, cpl, acc) and reports any divergence.
func (w *diffWorld) checkOne(tb testing.TB, virt uint64, cpl CPL, acc Access) {
	tb.Helper()
	ctx := AccessContext{M: w.m, VMPL: VMPL0, CPL: cpl, CR3: w.cr3}
	refPhys, refErr := ctx.translateUncached(virt, acc)
	gotPhys, gotErr := ctx.Translate(virt, acc)
	if (refErr == nil) != (gotErr == nil) {
		tb.Fatalf("Translate(%#x, %v, %v) diverged: cached err=%v, reference err=%v",
			virt, cpl, acc, gotErr, refErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			tb.Fatalf("Translate(%#x, %v, %v) fault diverged:\n  cached:    %v\n  reference: %v",
				virt, cpl, acc, gotErr, refErr)
		}
		return
	}
	if refPhys != gotPhys {
		tb.Fatalf("Translate(%#x, %v, %v) = %#x, reference walker says %#x",
			virt, cpl, acc, gotPhys, refPhys)
	}
}

// probeVirts are the addresses swept after every mutation: both groups,
// a hole past each group, and a non-canonical address.
func diffProbes(r byte) []uint64 {
	i := int(r) % diffGroupPages
	return []uint64{
		diffVirt(0, i),
		diffVirt(1, diffGroupPages-1-i),
		uint64(diffGroupPages+int(r)%8) * PageSize, // unmapped in group A's leaf
		diffGroupBVirt + uint64(diffGroupPages)*PageSize,
		1 << VirtBits, // non-canonical
	}
}

// step consumes bytes from data and applies one operation. It returns the
// number of bytes consumed (0 when data is exhausted).
func (w *diffWorld) step(tb testing.TB, data []byte) int {
	tb.Helper()
	if len(data) < 3 {
		return 0
	}
	op, a, b := data[0], data[1], data[2]
	g, i := int(a)%2, int(b)%diffGroupPages
	leaf := w.leafA
	if g == 1 {
		leaf = w.leafB
	}
	switch op % 6 {
	case 0: // translate at a random ring/access
		w.checkOne(tb, diffVirt(g, i), CPL(a%2)*3, Access(b%3))
	case 1: // rewrite a leaf PTE with random permission bits
		flags := uint64(PTEPresent)
		if a&1 != 0 {
			flags |= PTEWrite
		}
		if a&2 != 0 {
			flags |= PTEUser
		}
		if a&4 != 0 {
			flags |= PTENX
		}
		if b&1 != 0 {
			flags &^= PTEPresent // tear the mapping down entirely
		}
		if err := w.ctx.WritePTE(leaf, uint64(i), MakePTE(diffPhys(g, i), flags)); err != nil {
			tb.Fatalf("WritePTE: %v", err)
		}
	case 2: // re-point or sever an intermediate entry
		flags := uint64(PTEPresent | PTEWrite | PTEUser)
		if a&1 != 0 {
			flags &^= PTEPresent
		}
		if err := w.ctx.WritePTE(w.l1, uint64(g), MakePTE(leaf, flags)); err != nil {
			tb.Fatalf("WritePTE(l1): %v", err)
		}
	case 3: // RMPADJUST: flip a data page's VMPL3 vector (bumps the RMP epoch)
		perms := PermNone
		if a&1 != 0 {
			perms = PermRW
		}
		if err := w.m.RMPAdjust(VMPL0, diffPhys(g, i), VMPL3, perms); err != nil {
			tb.Fatalf("RMPAdjust: %v", err)
		}
	case 4: // full flush
		w.m.FlushTLB()
	case 5: // VMPL0 data access through the span fast path, cross-checked
		virt := diffVirt(g, i)
		if refPhys, refErr := w.ctx.translateUncached(virt, AccessRead); refErr == nil {
			got, err := w.ctx.ReadU64(virt)
			if err != nil {
				tb.Fatalf("ReadU64(%#x): %v", virt, err)
			}
			var raw [8]byte
			if err := w.m.GuestReadPhys(VMPL0, CPL0, refPhys, raw[:]); err != nil {
				tb.Fatalf("GuestReadPhys(%#x): %v", refPhys, err)
			}
			if want := leU64(raw[:]); got != want {
				tb.Fatalf("ReadU64(%#x) = %#x through the TLB, %#x direct", virt, got, want)
			}
			if _, werr := w.ctx.translateUncached(virt, AccessWrite); werr == nil {
				if err := w.ctx.WriteU64(virt, got+1); err != nil {
					tb.Fatalf("WriteU64(%#x): %v", virt, err)
				}
			}
		}
	}
	// After every operation, sweep the probe set at both rings and all
	// access kinds: staleness shows up here as a divergence.
	for _, virt := range diffProbes(b) {
		for _, cpl := range []CPL{CPL0, CPL3} {
			for _, acc := range []Access{AccessRead, AccessWrite, AccessExec} {
				w.checkOne(tb, virt, cpl, acc)
			}
		}
	}
	return 3
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func runTranslateDiff(tb testing.TB, data []byte) {
	tb.Helper()
	w := buildDiffWorld(tb)
	for len(data) > 0 {
		n := w.step(tb, data)
		if n == 0 {
			break
		}
		data = data[n:]
	}
}

// TestTranslateDifferentialSeeded drives long seeded op-streams through the
// differential harness — the deterministic everyday version of the fuzzer.
func TestTranslateDifferentialSeeded(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			data := make([]byte, 3*400)
			r.Read(data)
			runTranslateDiff(t, data)
		})
	}
}

// FuzzTranslateTLB feeds arbitrary op-streams to the differential harness:
// go test -fuzz=FuzzTranslateTLB ./internal/snp
func FuzzTranslateTLB(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 3, 9, 0, 0, 9, 2, 1, 0, 0, 1, 9})
	f.Add([]byte{3, 1, 5, 0, 0, 5, 4, 0, 0, 0, 1, 5, 5, 2, 7})
	r := rand.New(rand.NewSource(42))
	big := make([]byte, 3*64)
	r.Read(big)
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*1024 {
			t.Skip("cap stream length")
		}
		runTranslateDiff(t, data)
	})
}
