package snp

import (
	"math/rand"
	"testing"
)

// TestPageStateMachineInvariants drives one page through long random
// sequences of the operations the host and guest can attempt (assign,
// reclaim, validate, invalidate, adjust, access) and checks the RMP's
// architectural invariants after every step:
//
//  1. VMPL0 permissions on an assigned+validated page are always PermAll.
//  2. A page is never validated without being assigned.
//  3. Hypervisor reads succeed iff the page is unassigned.
//  4. Guest accesses never succeed without the matching permission.
//  5. Reclaim never succeeds on a validated page.
func TestPageStateMachineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const steps = 4000

	m := NewMachine(Config{MemBytes: 2 * PageSize, VCPUs: 1})
	const phys = 0

	check := func(step int, op string) {
		e, err := m.RMPEntryAt(phys)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, op, err)
		}
		if e.Validated && !e.Assigned {
			t.Fatalf("step %d (%s): validated but unassigned", step, op)
		}
		if e.Assigned && e.Validated && e.Perms[VMPL0] != PermAll {
			t.Fatalf("step %d (%s): VMPL0 perms = %s", step, op, e.Perms[VMPL0])
		}
		hvErr := m.HVReadPhys(phys, make([]byte, 1))
		if (hvErr == nil) != !e.Assigned {
			t.Fatalf("step %d (%s): hv read err=%v assigned=%v", step, op, hvErr, e.Assigned)
		}
	}

	for step := 0; step < steps; step++ {
		if m.Halted() != nil {
			// A guest permission violation halted the model CVM; for the
			// state machine test we reset the latch and continue probing.
			m.halted = nil
		}
		var op string
		switch rng.Intn(6) {
		case 0:
			op = "assign"
			_ = m.HVAssignPage(phys)
		case 1:
			op = "reclaim"
			e, _ := m.RMPEntryAt(phys)
			err := m.HVReclaimPage(phys)
			if err == nil && e.Validated {
				t.Fatalf("step %d: reclaimed a validated page", step)
			}
		case 2:
			op = "validate"
			_ = m.PValidate(VMPL0, phys, true)
		case 3:
			op = "invalidate"
			_ = m.PValidate(VMPL0, phys, false)
		case 4:
			op = "adjust"
			target := VMPL(1 + rng.Intn(3))
			perm := Perm(rng.Intn(16))
			_ = m.RMPAdjust(VMPL0, phys, target, perm)
		case 5:
			op = "access"
			vmpl := VMPL(rng.Intn(4))
			cpl := CPL0
			if rng.Intn(2) == 1 {
				cpl = CPL3
			}
			acc := Access(rng.Intn(3))
			e, _ := m.RMPEntryAt(phys)
			var err error
			switch acc {
			case AccessRead:
				err = m.GuestReadPhys(vmpl, cpl, phys, make([]byte, 1))
			case AccessWrite:
				err = m.GuestWritePhys(vmpl, cpl, phys, []byte{1})
			case AccessExec:
				err = m.GuestExecCheckPhys(vmpl, cpl, phys)
			}
			allowed := false
			switch {
			case e.VMSA:
				allowed = false
			case !e.Assigned:
				allowed = acc != AccessExec
			case !e.Validated:
				allowed = false
			default:
				allowed = e.Perms[vmpl].Has(permFor(acc, cpl))
			}
			if (err == nil) != allowed {
				t.Fatalf("step %d: access %v at %s/%s err=%v, allowed=%v (entry %+v)",
					step, acc, vmpl, cpl, err, allowed, e)
			}
		}
		check(step, op)
	}
}

// TestVMSALifecycleStateMachine drives VMSA create/update/destroy randomly
// and checks the page's accessibility tracks the VMSA flag.
func TestVMSALifecycleStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := NewMachine(Config{MemBytes: 2 * PageSize, VCPUs: 1})
	if err := m.HVAssignPage(0); err != nil {
		t.Fatal(err)
	}
	if err := m.PValidate(VMPL0, 0, true); err != nil {
		t.Fatal(err)
	}
	isVMSA := false
	for step := 0; step < 1000; step++ {
		m.halted = nil
		switch rng.Intn(3) {
		case 0:
			err := m.CreateVMSA(VMPL0, 0, VMSA{VCPUID: 0, VMPL: VMPL(rng.Intn(4))})
			if (err == nil) != !isVMSA {
				t.Fatalf("step %d: create err=%v isVMSA=%v", step, err, isVMSA)
			}
			if err == nil {
				isVMSA = true
			}
		case 1:
			err := m.DestroyVMSA(VMPL0, 0)
			if (err == nil) != isVMSA {
				t.Fatalf("step %d: destroy err=%v isVMSA=%v", step, err, isVMSA)
			}
			if err == nil {
				isVMSA = false
			}
		case 2:
			err := m.GuestReadPhys(VMPL0, CPL0, 0, make([]byte, 1))
			if (err == nil) != !isVMSA {
				t.Fatalf("step %d: read err=%v isVMSA=%v", step, err, isVMSA)
			}
		}
	}
}
