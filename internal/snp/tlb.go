package snp

// Software TLB for the simulated hardware page-table walker.
//
// Real SEV-SNP cores cache completed nested walks — the guest translation
// plus the RMP verdict — and require explicit TLB invalidation when the RMP
// or the tables change; a stale translation that survives an RMPADJUST is a
// known attack surface of the SNP interface. The model reproduces that
// structure — and gets its host speed from it — with a direct-mapped
// translation cache and three invalidation channels, ordered from blunt to
// precise:
//
//   - FlushTLB bumps a machine-wide flush epoch: every cached entry dies.
//     This is the INVLPG-all/shootdown hammer, exported for software layers.
//   - RMP mutations (RMPADJUST, PVALIDATE, VMSA create/destroy, hypervisor
//     page-state changes) bump the RMP epoch: cached *translations* survive
//     (the guest page tables did not change) but every memoized RMP verdict
//     dies, so the next access re-runs checkGuestAccess — which is exactly
//     the re-check hardware performs after the required invalidation.
//   - A software write landing on a live page-table page (one the walker
//     has read PTEs from) bumps that page's generation: only entries whose
//     walk traversed the written page die, because each entry records the
//     four table pages (and generations) its walk read.
//
// A stale entry can therefore never survive a permission change, at any
// layer, while unrelated translations stay hot.
//
// The TLB affects host wall-clock only. It charges no virtual cycles and
// emits no events, so every deterministic simulator output is unchanged;
// MemStats counters are exported out-of-band (veil-sim -metrics, bench).

// tlbSlots is the number of direct-mapped cache slots. Collisions simply
// evict — correctness never depends on residency.
const tlbSlots = 1 << 12

// tlbKey identifies one cached translation. CR3 is part of the key so
// contexts on different trees never alias; VMPL/CPL are included because
// the effective-permission faults and the RMP verdict depend on them.
type tlbKey struct {
	cr3   uint64
	vpage uint64
	vmpl  VMPL
	cpl   CPL
}

// tlbDep records one table page the walk read, with the generation it had
// at walk time.
type tlbDep struct {
	pi  uint32
	gen uint32
}

// tlbEntry is one completed walk: the leaf frame, the accumulated PTE
// permission bits, the pages the walk depends on, and the per-access RMP
// verdict mask.
type tlbEntry struct {
	key        tlbKey
	flushEpoch uint64 // matches Machine.tlbFlushEpoch while live
	rmpEpoch   uint64 // epoch rmpOK was established at
	physPage   uint64
	eff        uint64 // accumulated PTEWrite|PTEUser across levels
	deps       [PTLevels]tlbDep
	effNX      bool
	rmpOK      uint8 // bitmask by Access: checkGuestAccess passed at rmpEpoch
}

// MemStats are host-side counters over the memory path: software-TLB
// behaviour and zero-copy span usage. They never feed the virtual Clock.
type MemStats struct {
	TLBHits           uint64 // translations served from the cache
	TLBMisses         uint64 // translations that ran the 4-level walk
	TLBFlushes        uint64 // full flushes (FlushTLB epoch bumps)
	TLBRMPFlushes     uint64 // RMP-verdict invalidations (RMP/page-state changes)
	TLBPTInvalidation uint64 // precise per-table-page invalidations
	SpanReads         uint64 // zero-copy read spans handed out
	SpanWrites        uint64 // zero-copy write spans handed out
	SpanBatchHits     uint64 // SpanCursor accesses served from the cached page
	SpanBatchFills    uint64 // SpanCursor refills through the full span path
}

// MemStats returns a snapshot of the memory-path counters.
func (m *Machine) MemStats() MemStats { return m.memStats }

// FlushTLB invalidates every cached translation by bumping the machine
// flush epoch. The architectural mutators use the narrower channels below;
// this is the full hammer, exported so software layers modelling
// INVLPG-style shootdowns can force a flush.
func (m *Machine) FlushTLB() {
	if m.tlbNoInvalidate {
		return
	}
	m.tlbFlushEpoch++
	m.tlbGen++
	m.memStats.TLBFlushes++
}

// rmpFlushTLB invalidates every cached RMP verdict (translations survive).
// Every architectural RMP or page-state mutation calls it.
func (m *Machine) rmpFlushTLB() {
	// Count the mutation before the broken-mode guard: rmpMutations is the
	// auditor's ground truth, and must diverge from TLBRMPFlushes exactly
	// when invalidation is (wrongly) suppressed.
	m.rmpMutations++
	if m.tlbNoInvalidate {
		return
	}
	m.tlbRMPEpoch++
	m.tlbGen++
	m.memStats.TLBRMPFlushes++
}

// SetBrokenTLBNoInvalidate disables TLB invalidation entirely. This exists
// only to prove the stale-translation attack test has teeth (a TLB that
// skips invalidation must make the suite fail); it must never be enabled
// outside that test.
func (m *Machine) SetBrokenTLBNoInvalidate(on bool) { m.tlbNoInvalidate = on }

// tlbSlot returns the cache slot for k (allocating the cache on first use).
func (m *Machine) tlbSlot(k tlbKey) *tlbEntry {
	if m.tlb == nil {
		m.tlb = make([]tlbEntry, tlbSlots)
	}
	idx := (k.vpage ^ k.cr3>>PageShift ^ uint64(k.vmpl)<<7 ^ uint64(k.cpl)<<9) & (tlbSlots - 1)
	return &m.tlb[idx]
}

// tlbLive reports whether e currently caches k: right key, not flushed, and
// every table page the walk read still at its walk-time generation.
func (m *Machine) tlbLive(e *tlbEntry, k tlbKey) bool {
	if e.key != k || e.flushEpoch != m.tlbFlushEpoch {
		return false
	}
	for _, d := range e.deps {
		if m.ptGen[d.pi] != d.gen {
			return false
		}
	}
	return true
}

// tlbFill (re)populates e with a completed walk. Leaves outside guest
// memory are never cached: the access path must keep reporting the
// out-of-range error, and the fast path must never slice m.mem beyond its
// bounds. Returns whether the slot is now live for k.
func (m *Machine) tlbFill(e *tlbEntry, k tlbKey, physPage, eff uint64, effNX bool, deps [PTLevels]tlbDep) bool {
	if physPage >= m.cfg.MemBytes {
		if e.key == k {
			e.key = tlbKey{} // drop a stale entry shadowing this key
		}
		return false
	}
	*e = tlbEntry{
		key: k, flushEpoch: m.tlbFlushEpoch, rmpEpoch: m.tlbRMPEpoch,
		physPage: physPage, eff: eff, effNX: effNX, deps: deps,
	}
	return true
}

// notePTPage marks pi as a live page-table page: the hardware walker has
// read entries from it, so cached translations may depend on its contents
// and any later software write to it must invalidate them. The set is
// conservative — pages are never un-marked — which can only cause extra
// invalidations. Returns the page's current generation.
func (m *Machine) notePTPage(pi uint64) uint32 {
	if m.ptGen == nil {
		pages := uint64(len(m.rmp))
		m.ptPages = make([]uint64, (pages+63)/64)
		m.ptGen = make([]uint32, pages)
	}
	m.ptPages[pi>>6] |= 1 << (pi & 63)
	return m.ptGen[pi]
}

// isPTPage reports whether the walker has ever read PTEs from page pi.
func (m *Machine) isPTPage(pi uint64) bool {
	return m.ptPages != nil && m.ptPages[pi>>6]&(1<<(pi&63)) != 0
}

// invalidatePTPage bumps pi's generation after a software write to a live
// table page, killing exactly the translations whose walk read it.
func (m *Machine) invalidatePTPage(pi uint64) {
	if m.tlbNoInvalidate {
		return
	}
	m.ptGen[pi]++
	m.tlbGen++
	m.memStats.TLBPTInvalidation++
}
