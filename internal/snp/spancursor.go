package snp

import "encoding/binary"

// SpanCursor is the batch span-lookup API over the software TLB: a handle
// a sequential workload holds across a run of accesses so that the
// per-access costs of the span path — building the {vpage,cr3,vmpl,cpl}
// key, hashing it into the cache, re-walking the entry's table-page
// dependency generations, and re-checking the PTE permissions and the RMP
// verdict mask — are paid once per page instead of once per access.
//
// The cursor caches the backing slice of the last page it resolved plus a
// snapshot of the machine's coarse invalidation tick (Machine.tlbGen).
// Every invalidation on any of the TLB's three precise channels — a full
// flush, an RMP/page-state mutation, a software write to a live
// page-table page — also bumps the tick, so the fast path is two bounds
// checks and one counter compare. Any mismatch falls back to the exact
// per-access span path, which re-runs the full PTE+RMP machinery and
// raises faults with byte-identical semantics (same events, same faulting
// virtual address) to an uncursored access.
//
// Like the TLB itself, the cursor affects host wall-clock only: the fast
// path charges no virtual cycles and emits no events, and a successful
// per-access span does neither, so every deterministic simulator output
// is unchanged. MemStats.SpanBatchHits/SpanBatchFills count the traffic
// out-of-band.
//
// A cursor is bound to one AccessContext and one Access kind. It must not
// be shared across goroutines, and — like WithSpan — slices it returns
// alias guest memory and are invalidated by any RMP or mapping change;
// callers must consume them before the next machine operation.
type SpanCursor struct {
	ctx  AccessContext
	acc  Access
	mem  []byte // full backing page, nil when nothing is cached
	base uint64 // virtual page base mem corresponds to
	gen  uint64 // Machine.tlbGen snapshot when mem was established
	pi   uint64 // physical page index of mem
}

// Cursor returns a batch span cursor for sequential accesses of kind acc
// under this context.
func (a AccessContext) Cursor(acc Access) SpanCursor {
	return SpanCursor{ctx: a, acc: acc}
}

// Invalidate drops the cached page; the next access refills through the
// exact span path.
func (c *SpanCursor) Invalidate() { c.mem = nil }

// Span returns the backing bytes for [virt, virt+n), which must lie
// within one page, performing the full PTE+RMP checks on the first touch
// of each page and the amortized revalidation afterwards.
func (c *SpanCursor) Span(virt uint64, n int) ([]byte, error) {
	m := c.ctx.M
	off := virt - c.base
	if c.mem != nil && c.gen == m.tlbGen && off < PageSize && uint64(n) <= PageSize-off {
		if m.halted != nil {
			return nil, ErrHalted
		}
		if c.acc == AccessWrite && m.isPTPage(c.pi) {
			// Mirror the span path: a write landing on a live table page
			// invalidates the translations that walked it. The bump also
			// advances tlbGen, so the cursor itself revalidates next time.
			m.invalidatePTPage(c.pi)
		}
		m.memStats.SpanBatchHits++
		return c.mem[off : off+uint64(n)], nil
	}
	return c.fill(virt, n)
}

// fill resolves through the exact per-access span path (identical fault
// semantics and events) and caches the full backing page on success.
func (c *SpanCursor) fill(virt uint64, n int) ([]byte, error) {
	m := c.ctx.M
	buf, phys, err := c.ctx.spanPhys(virt, n, c.acc)
	if err != nil {
		c.mem = nil
		return nil, err
	}
	m.memStats.SpanBatchFills++
	pageBase := PageBase(phys)
	c.mem = m.mem[pageBase : pageBase+PageSize]
	c.base = virt &^ (PageSize - 1)
	c.pi = pageBase >> PageShift
	// Snapshot the tick AFTER the fill: a write span landing on a live
	// page-table page bumps tlbGen inside spanPhys, and the cursor must
	// not validate itself against a tick its own fill advanced past.
	c.gen = m.tlbGen
	return buf, nil
}

// ReadU64 loads a little-endian 64-bit word through the cursor. The hit
// path is hand-inlined rather than routed through Span: a word load is
// the cursor's hottest single operation, and folding the validity checks
// into this frame removes one call from every hit while keeping the
// conditions — and the stats — exactly Span's. Any miss (cold cursor,
// stale tick, halted machine, write cursor, page straddle) falls through
// to the general path with identical semantics.
func (c *SpanCursor) ReadU64(virt uint64) (uint64, error) {
	if off := virt - c.base; c.mem != nil && off+8 <= PageSize {
		m := c.ctx.M
		if c.gen == m.tlbGen && m.halted == nil && c.acc != AccessWrite {
			m.memStats.SpanBatchHits++
			return binary.LittleEndian.Uint64(c.mem[off:]), nil
		}
	}
	if PageOffset(virt)+8 <= PageSize {
		mem, err := c.Span(virt, 8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(mem), nil
	}
	return c.ctx.ReadU64(virt)
}

// WriteU64 stores a little-endian 64-bit word through the cursor.
func (c *SpanCursor) WriteU64(virt uint64, v uint64) error {
	if PageOffset(virt)+8 <= PageSize {
		mem, err := c.Span(virt, 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(mem, v)
		return nil
	}
	return c.ctx.WriteU64(virt, v)
}

// Copy moves len(buf) bytes between buf and virtual memory, splitting on
// page boundaries; the direction follows the cursor's access kind (a read
// cursor fills buf, a write cursor stores it). Each chunk resolves
// through the cursor, so a sequential bulk copy revalidates once per page.
func (c *SpanCursor) Copy(virt uint64, buf []byte) error {
	return c.chunked(virt, buf, c.acc == AccessWrite)
}

func (c *SpanCursor) chunked(virt uint64, buf []byte, store bool) error {
	off := 0
	for off < len(buf) {
		chunk := int(PageSize - PageOffset(virt+uint64(off)))
		if rem := len(buf) - off; chunk > rem {
			chunk = rem
		}
		mem, err := c.Span(virt+uint64(off), chunk)
		if err != nil {
			return err
		}
		if store {
			copy(mem, buf[off:off+chunk])
		} else {
			copy(buf[off:off+chunk], mem)
		}
		off += chunk
	}
	return nil
}
