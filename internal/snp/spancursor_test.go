package snp

// Differential testing of the batch span cursor: a cursor-driven access
// must be observationally identical to the exact per-access span path —
// same bytes, same faults, same final memory — across arbitrary
// interleavings with PTE rewrites, RMPADJUST calls, full flushes and
// table-page aliasing. The cursor's only legal divergence is host speed.

import (
	"fmt"
	"math/rand"
	"testing"
)

// cursorWorld extends the TLB differential world with one long-lived
// cursor per access kind, as a sequential workload would hold them.
type cursorWorld struct {
	*diffWorld
	rc SpanCursor
	wc SpanCursor
}

func buildCursorWorld(tb testing.TB) *cursorWorld {
	w := buildDiffWorld(tb)
	return &cursorWorld{
		diffWorld: w,
		rc:        w.ctx.Cursor(AccessRead),
		wc:        w.ctx.Cursor(AccessWrite),
	}
}

// checkRead compares a cursor read against the exact span path for one
// virtual address: identical error outcome, identical bytes.
func (w *cursorWorld) checkRead(tb testing.TB, virt uint64) {
	tb.Helper()
	got, gerr := w.rc.ReadU64(virt)
	want, werr := w.ctx.ReadU64(virt)
	if (gerr == nil) != (werr == nil) {
		tb.Fatalf("cursor ReadU64(%#x) err=%v, span path err=%v", virt, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			tb.Fatalf("cursor ReadU64(%#x) fault diverged:\n  cursor: %v\n  span:   %v", virt, gerr, werr)
		}
		return
	}
	if got != want {
		tb.Fatalf("cursor ReadU64(%#x) = %#x, span path reads %#x", virt, got, want)
	}
}

// checkWrite writes through the cursor and re-writes the same value
// through the exact path: the error outcomes must match, and a read-back
// must observe the value.
func (w *cursorWorld) checkWrite(tb testing.TB, virt uint64, v uint64) {
	tb.Helper()
	gerr := w.wc.WriteU64(virt, v)
	werr := w.ctx.WriteU64(virt, v)
	if (gerr == nil) != (werr == nil) {
		tb.Fatalf("cursor WriteU64(%#x) err=%v, span path err=%v", virt, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			tb.Fatalf("cursor WriteU64(%#x) fault diverged:\n  cursor: %v\n  span:   %v", virt, gerr, werr)
		}
		return
	}
	if got, err := w.ctx.ReadU64(virt); err == nil && got != v {
		tb.Fatalf("cursor WriteU64(%#x, %#x) read back %#x", virt, v, got)
	}
}

// cursorStep applies one 3-byte operation: cursor traffic interleaved
// with every invalidation source the TLB knows.
func (w *cursorWorld) cursorStep(tb testing.TB, data []byte) int {
	tb.Helper()
	if len(data) < 3 {
		return 0
	}
	op, a, b := data[0], data[1], data[2]
	g, i := int(a)%2, int(b)%diffGroupPages
	virt := diffVirt(g, i) + uint64(a%2)*8
	leaf := w.leafA
	if g == 1 {
		leaf = w.leafB
	}
	switch op % 8 {
	case 0:
		w.checkRead(tb, virt)
	case 1:
		w.checkWrite(tb, virt, uint64(a)<<8|uint64(b))
	case 2: // bulk copy through the cursor vs the copying access path
		var got, want [24]byte
		gerr := w.rc.Copy(virt, got[:])
		werr := w.ctx.Read(virt, want[:])
		if (gerr == nil) != (werr == nil) {
			tb.Fatalf("cursor Copy(%#x) err=%v, Read err=%v", virt, gerr, werr)
		}
		if gerr == nil && got != want {
			tb.Fatalf("cursor Copy(%#x) = %x, Read says %x", virt, got, want)
		}
	case 3: // rewrite a leaf PTE (kills translations via the PT-page channel)
		flags := uint64(PTEPresent | PTEUser)
		if a&1 != 0 {
			flags |= PTEWrite
		}
		if b&1 != 0 {
			flags &^= PTEPresent
		}
		if err := w.ctx.WritePTE(leaf, uint64(i), MakePTE(diffPhys(g, i), flags)); err != nil {
			tb.Fatalf("WritePTE: %v", err)
		}
	case 4: // RMPADJUST (bumps the RMP epoch)
		perms := PermNone
		if a&1 != 0 {
			perms = PermRW
		}
		if err := w.m.RMPAdjust(VMPL0, diffPhys(g, i), VMPL3, perms); err != nil {
			tb.Fatalf("RMPAdjust: %v", err)
		}
	case 5: // full flush
		w.m.FlushTLB()
	case 6: // alias a data virt onto a live table page: cursor writes there
		// must take the per-table-page invalidation path, exactly like the
		// span path does.
		if err := w.ctx.WritePTE(leaf, uint64(i), MakePTE(w.leafA, PTEPresent|PTEWrite|PTEUser)); err != nil {
			tb.Fatalf("WritePTE(alias): %v", err)
		}
		w.checkWrite(tb, diffVirt(g, i)+uint64(diffGroupPages+8)*8, uint64(b))
		// Restore the mapping so later ops see data frames again.
		if err := w.ctx.WritePTE(leaf, uint64(i), MakePTE(diffPhys(g, i), PTEPresent|PTEWrite|PTEUser)); err != nil {
			tb.Fatalf("WritePTE(restore): %v", err)
		}
	case 7: // sever an intermediate entry
		flags := uint64(PTEPresent | PTEWrite | PTEUser)
		if a&1 != 0 {
			flags &^= PTEPresent
		}
		if err := w.ctx.WritePTE(w.l1, uint64(g), MakePTE(leaf, flags)); err != nil {
			tb.Fatalf("WritePTE(l1): %v", err)
		}
	}
	// Sweep the probe set through both cursors after every operation:
	// staleness — a cursor surviving an invalidation it should not —
	// shows up here as a byte or fault divergence.
	for _, pv := range diffProbes(b) {
		w.checkRead(tb, pv)
	}
	return 3
}

func runCursorDiff(tb testing.TB, data []byte) {
	tb.Helper()
	w := buildCursorWorld(tb)
	for len(data) > 0 {
		n := w.cursorStep(tb, data)
		if n == 0 {
			break
		}
		data = data[n:]
	}
}

// TestSpanCursorDifferentialSeeded drives long seeded op-streams through
// the cursor differential harness.
func TestSpanCursorDifferentialSeeded(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			data := make([]byte, 3*400)
			r.Read(data)
			runCursorDiff(t, data)
		})
	}
}

// FuzzSpanCursor feeds arbitrary op-streams to the cursor harness:
// go test -fuzz=FuzzSpanCursor ./internal/snp
func FuzzSpanCursor(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 3, 9, 0, 0, 9, 6, 1, 0, 5, 1, 9})
	f.Add([]byte{3, 1, 5, 0, 0, 5, 4, 0, 0, 2, 1, 5, 5, 2, 7})
	r := rand.New(rand.NewSource(99))
	big := make([]byte, 3*64)
	r.Read(big)
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*1024 {
			t.Skip("cap stream length")
		}
		runCursorDiff(t, data)
	})
}

// TestSpanCursorZeroAllocs pins the cursor hot path at zero allocations
// per access — the property the hostperf numbers rest on.
func TestSpanCursorZeroAllocs(t *testing.T) {
	w := buildCursorWorld(t)
	virt := diffVirt(0, 3)
	if _, err := w.rc.ReadU64(virt); err != nil { // fill outside the measurement
		t.Fatal(err)
	}
	if err := w.wc.WriteU64(virt+8, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.rc.ReadU64(virt); err != nil {
			t.Fatal(err)
		}
		if err := w.wc.WriteU64(virt+8, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cursor access path allocates %.1f times per op, want 0", allocs)
	}
}

// TestSpanCursorStats checks the out-of-band batch counters move: a
// sequential sweep is almost entirely batch hits with one fill per page.
func TestSpanCursorStats(t *testing.T) {
	w := buildCursorWorld(t)
	before := w.m.MemStats()
	for i := 0; i < diffGroupPages; i++ {
		for off := uint64(0); off < PageSize; off += 64 {
			if _, err := w.rc.ReadU64(diffVirt(0, i) + off); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := w.m.MemStats()
	fills := d.SpanBatchFills - before.SpanBatchFills
	hits := d.SpanBatchHits - before.SpanBatchHits
	if fills != diffGroupPages {
		t.Fatalf("SpanBatchFills = %d, want %d (one per page)", fills, diffGroupPages)
	}
	if want := uint64(diffGroupPages * (PageSize/64 - 1)); hits != want {
		t.Fatalf("SpanBatchHits = %d, want %d", hits, want)
	}
}
