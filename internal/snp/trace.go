package snp

import "reflect"

// Trace counts architectural events. The evaluation harness reads these to
// compute exit rates (Figs 5 and 6 report enclave-exit and log rates per
// second of simulated time).
//
// Trace is a compatibility view over the machine's observation layer: the
// counters are maintained exclusively by the Observe* helpers in observe.go
// (the same path that feeds an attached obs.Recorder), never by ad-hoc
// increments. Every field must be a uint64 counter — Since relies on it,
// and TestTraceSinceCoversAllFields enforces it.
type Trace struct {
	VMGExits       uint64 // non-automatic exits via VMGEXIT
	AutomaticExits uint64 // automatic exits (interrupts etc.)
	VMEnters       uint64 // VMENTER resumes
	VMCalls        uint64 // plain VMCALL exits (non-SNP comparison path)
	DomainSwitches uint64 // completed hypervisor-relayed domain switches
	RMPAdjusts     uint64
	PValidates     uint64
	Interrupts     uint64
	Syscalls       uint64 // guest kernel syscalls
	EnclaveExits   uint64 // enclave → untrusted world transitions
	AuditRecords   uint64 // kaudit records emitted
}

// Snapshot returns a copy for differential measurement.
func (t *Trace) Snapshot() Trace { return *t }

// Since returns the per-field difference t - prev. It walks the struct by
// reflection so a newly added counter can never be silently missing from
// differential measurements.
func (t *Trace) Since(prev Trace) Trace {
	var out Trace
	tv := reflect.ValueOf(*t)
	pv := reflect.ValueOf(prev)
	ov := reflect.ValueOf(&out).Elem()
	for i := 0; i < tv.NumField(); i++ {
		ov.Field(i).SetUint(tv.Field(i).Uint() - pv.Field(i).Uint())
	}
	return out
}
