package snp

// Trace counts architectural events. The evaluation harness reads these to
// compute exit rates (Figs 5 and 6 report enclave-exit and log rates per
// second of simulated time).
type Trace struct {
	VMGExits       uint64 // non-automatic exits via VMGEXIT
	AutomaticExits uint64 // automatic exits (interrupts etc.)
	VMEnters       uint64 // VMENTER resumes
	VMCalls        uint64 // plain VMCALL exits (non-SNP comparison path)
	DomainSwitches uint64 // completed hypervisor-relayed domain switches
	RMPAdjusts     uint64
	PValidates     uint64
	Interrupts     uint64
	Syscalls       uint64 // guest kernel syscalls
	EnclaveExits   uint64 // enclave → untrusted world transitions
	AuditRecords   uint64 // kaudit records emitted
}

// Snapshot returns a copy for differential measurement.
func (t *Trace) Snapshot() Trace { return *t }

// Since returns the per-field difference t - prev.
func (t *Trace) Since(prev Trace) Trace {
	return Trace{
		VMGExits:       t.VMGExits - prev.VMGExits,
		AutomaticExits: t.AutomaticExits - prev.AutomaticExits,
		VMEnters:       t.VMEnters - prev.VMEnters,
		VMCalls:        t.VMCalls - prev.VMCalls,
		DomainSwitches: t.DomainSwitches - prev.DomainSwitches,
		RMPAdjusts:     t.RMPAdjusts - prev.RMPAdjusts,
		PValidates:     t.PValidates - prev.PValidates,
		Interrupts:     t.Interrupts - prev.Interrupts,
		Syscalls:       t.Syscalls - prev.Syscalls,
		EnclaveExits:   t.EnclaveExits - prev.EnclaveExits,
		AuditRecords:   t.AuditRecords - prev.AuditRecords,
	}
}
