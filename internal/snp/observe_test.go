package snp

import (
	"testing"

	"veil/internal/obs"
)

// TestObserveHelpersFeedTraceAndRecorder checks the single-path invariant:
// the legacy Trace counters and the obs recorder are maintained by the same
// Observe* calls, so they can never drift apart.
func TestObserveHelpersFeedTraceAndRecorder(t *testing.T) {
	m := NewMachine(Config{MemBytes: 4 * PageSize, VCPUs: 1})
	rec := obs.NewRecorder(128)
	m.SetRecorder(rec)
	if m.Recorder() != rec {
		t.Fatal("Recorder() must return the attached recorder")
	}
	m.SetObsVCPU(1)

	m.ObserveVMGEXIT()
	m.ObserveVMENTER()
	ref := m.ObserveSyscallEnter(VMPL3, 2)
	m.ObserveSyscallExit(VMPL3, 2, 0, ref)
	m.ObserveAudit(VMPL1, 64)
	m.ObserveDomainSwitch(VMPL3, VMPL0, 0)
	m.ObserveInterrupt()
	m.ObserveEnclaveExit()

	tr := m.Trace()
	met := rec.Metrics()
	checks := []struct {
		name    string
		counter uint64
		class   obs.Class
	}{
		{"VMGExits", tr.VMGExits, obs.ClassVMGEXIT},
		{"VMEnters", tr.VMEnters, obs.ClassVMENTER},
		{"Syscalls", tr.Syscalls, obs.ClassSyscall},
		{"AuditRecords", tr.AuditRecords, obs.ClassAudit},
		{"DomainSwitches", tr.DomainSwitches, obs.ClassDomainSwitch},
		{"Interrupts", tr.Interrupts, obs.ClassInterrupt},
		{"EnclaveExits", tr.EnclaveExits, obs.ClassEnclaveExit},
	}
	for _, c := range checks {
		if c.counter != 1 {
			t.Errorf("Trace.%s = %d, want 1", c.name, c.counter)
		}
		if got := met.Count(c.class); got != 1 {
			t.Errorf("recorder count for %s = %d, want 1", c.class, got)
		}
	}
	// Events carry the VCPU hint set via SetObsVCPU.
	for _, e := range rec.Events() {
		if e.VCPU != 1 {
			t.Errorf("event %s on vcpu %d, want 1", e.Class, e.VCPU)
		}
	}
}

// TestChargeMirrorsIntoRecorder checks the clock → attribution-table hook.
func TestChargeMirrorsIntoRecorder(t *testing.T) {
	m := NewMachine(Config{MemBytes: 4 * PageSize, VCPUs: 1})
	rec := obs.NewRecorder(16)
	m.SetRecorder(rec)
	m.Clock().Charge(CostVMGEXIT, 3890)
	m.Clock().Charge(CostSyscall, 300)
	a := AttributionOf(rec.Metrics().CyclesByKind())
	if a[CostVMGEXIT] != 3890 || a[CostSyscall] != 300 {
		t.Fatalf("recorder attribution = %v", a.Map())
	}
	// Kind names were registered on attach.
	if got := rec.Metrics().KindName(int(CostVMGEXIT)); got != "VMGEXIT" {
		t.Fatalf("KindName = %q, want VMGEXIT", got)
	}
	if rec.Metrics().NumKinds() != NumCostKinds {
		t.Fatalf("NumKinds = %d, want %d", rec.Metrics().NumKinds(), NumCostKinds)
	}
}

// TestNilRecorderMachineZeroAllocs proves the "nil = zero overhead"
// contract at the machine layer: observing with no recorder attached must
// not allocate.
func TestNilRecorderMachineZeroAllocs(t *testing.T) {
	m := NewMachine(Config{MemBytes: 4 * PageSize, VCPUs: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveVMGEXIT()
		m.ObserveVMENTER()
		ref := m.ObserveSyscallEnter(VMPL3, 1)
		m.ObserveSyscallExit(VMPL3, 1, 0, ref)
		m.ObserveDomainSwitch(VMPL3, VMPL0, 0)
		m.Clock().Charge(CostVMGEXIT, 10)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder observe path allocated %v times per run, want 0", allocs)
	}
}
