package snp

import (
	"errors"
	"fmt"
)

// FaultKind classifies the architectural faults the model can raise.
type FaultKind int

const (
	// FaultNPF is a nested page fault: an access violated the RMP
	// permissions for the accessing VMPL, or targeted an unvalidated or
	// hypervisor-owned page. In the configurations Veil uses, an #NPF on
	// a permission violation is not recoverable by the guest and the CVM
	// halts with continuous #NPFs (§5.1, §8.3).
	FaultNPF FaultKind = iota
	// FaultPF is a classical page fault from the guest page tables
	// (not-present or CPL/permission violation at the PTE level). These
	// are recoverable: the kernel (or, for enclaves, the collaborative
	// paging path) handles them.
	FaultPF
	// FaultGP is a general-protection-style fault: an architecturally
	// disallowed instruction, e.g. PVALIDATE outside VMPL0, RMPADJUST
	// targeting an equal-or-higher VMPL, or a privileged MSR write at
	// CPL3.
	FaultGP
)

func (k FaultKind) String() string {
	switch k {
	case FaultNPF:
		return "#NPF"
	case FaultPF:
		return "#PF"
	case FaultGP:
		return "#GP"
	}
	return "#??"
}

// Fault describes an architectural fault. It implements error so simulator
// layers can propagate it without losing the architectural detail.
type Fault struct {
	Kind   FaultKind
	VMPL   VMPL   // privilege level of the faulting access
	CPL    CPL    // ring of the faulting access
	Access Access // what was attempted
	Virt   uint64 // virtual address, if translation was involved
	Phys   uint64 // physical address, if known
	Why    string // human-readable cause
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s: %s %s at virt=%#x phys=%#x (%s, %s): %s",
		f.Kind, f.Access, "violation", f.Virt, f.Phys, f.VMPL, f.CPL, f.Why)
}

// ErrHalted is returned by machine operations after the CVM has halted.
var ErrHalted = errors.New("snp: CVM halted")

// AsFault extracts a *Fault from an error chain, if present.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// IsNPF reports whether err is (or wraps) a nested page fault.
func IsNPF(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Kind == FaultNPF
}

// IsPF reports whether err is (or wraps) a guest page fault.
func IsPF(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Kind == FaultPF
}

// IsGP reports whether err is (or wraps) a general-protection fault.
func IsGP(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Kind == FaultGP
}
