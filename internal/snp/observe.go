package snp

import "veil/internal/obs"

// This file is the machine's observation layer: every architectural event
// the simulator counts flows through exactly one Observe* helper. Each
// helper maintains the legacy Trace counter for its event (so Trace stays a
// thin compatibility view over the same instrumentation) and, when a
// recorder is attached, records a typed obs event stamped with the virtual
// cycle clock, the current VCPU and — where the producer knows it — the
// acting VMPL.
//
// With no recorder attached (the default) every helper is a counter bump
// plus a nil check: the fast path performs no allocation, which
// TestNilRecorderFastPath pins with testing.AllocsPerRun.

// SetRecorder attaches (or, with nil, detaches) an event recorder. The
// recorder also receives cycle attribution from the Clock and the cost-kind
// display names for its exporters.
func (m *Machine) SetRecorder(r *obs.Recorder) {
	m.rec = r
	m.clock.rec = r
	r.SetKindNames(CostKindNames())
	r.SetAuxCounters(m.memCounters)
}

// memCounters surfaces the memory-path statistics (tlb.go) to obs
// exporters. Pull-based: called only when an exporter runs, so the TLB hot
// path stays event-free and the trace ring sees no extra traffic.
func (m *Machine) memCounters() ([]string, []uint64) {
	s := m.memStats
	return []string{"tlb-hit", "tlb-miss", "tlb-flush", "tlb-rmp-flush", "tlb-pt-invalidate", "span-read", "span-write"},
		[]uint64{s.TLBHits, s.TLBMisses, s.TLBFlushes, s.TLBRMPFlushes, s.TLBPTInvalidation, s.SpanReads, s.SpanWrites}
}

// Recorder returns the attached recorder (nil when tracing is off).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// SetObsVCPU sets the hardware VCPU subsequent events are attributed to.
// The hypervisor calls this at its entry points (VMGEXIT, interrupt
// injection, VCPU start); machine-internal events inherit the last value.
func (m *Machine) SetObsVCPU(v int) { m.obsVCPU = int32(v) }

// emit records one event if a recorder is attached. TS is the current
// virtual cycle count; spans pass the cycles at which they started.
func (m *Machine) emit(class obs.Class, kind obs.EventKind, dur uint64, vmpl int16, a1, a2 uint64) {
	if m.rec == nil {
		return
	}
	m.rec.Record(obs.Event{
		TS: m.clock.total, Dur: dur, Arg1: a1, Arg2: a2,
		VCPU: m.obsVCPU, VMPL: vmpl, Class: class, Kind: kind,
	})
}

// ObserveVMGEXIT counts one non-automatic exit (VMSA state save).
func (m *Machine) ObserveVMGEXIT() {
	m.trace.VMGExits++
	m.emit(obs.ClassVMGEXIT, obs.Instant, 0, -1, 0, 0)
}

// ObserveVMENTER counts one VMENTER resume (VMSA state restore).
func (m *Machine) ObserveVMENTER() {
	m.trace.VMEnters++
	m.emit(obs.ClassVMENTER, obs.Instant, 0, -1, 0, 0)
}

// ObserveVMCall counts one plain exit on a non-SNP VM.
func (m *Machine) ObserveVMCall() {
	m.trace.VMCalls++
	m.emit(obs.ClassVMCALL, obs.Instant, 0, -1, 0, 0)
}

// ObserveRoundTrip records the span of one full VMGEXIT service round trip
// that began at startCycles, tagged with the GHCB exit code.
func (m *Machine) ObserveRoundTrip(exitCode uint64, startCycles uint64) {
	m.emit(obs.ClassRoundTrip, obs.Span, m.clock.total-startCycles, -1, exitCode, 0)
}

// ObserveDomainSwitch counts one completed hypervisor-relayed domain switch
// from one VMPL to another, spanning from startCycles to now.
func (m *Machine) ObserveDomainSwitch(from, to VMPL, startCycles uint64) {
	m.trace.DomainSwitches++
	m.emit(obs.ClassDomainSwitch, obs.Span, m.clock.total-startCycles, int16(from), uint64(from), uint64(to))
}

// observeRMPAdjust counts one RMPADJUST by caller on the page at phys,
// setting target's permission vector to perms (machine-internal; the
// architectural mutators call it after their checks pass).
func (m *Machine) observeRMPAdjust(caller, target VMPL, phys uint64, perms Perm) {
	m.trace.RMPAdjusts++
	m.emit(obs.ClassRMPAdjust, obs.Instant, 0, int16(caller), PageBase(phys), uint64(target)<<8|uint64(perms))
}

// observePValidate counts one PVALIDATE on the page at phys.
func (m *Machine) observePValidate(caller VMPL, phys uint64, validate bool) {
	m.trace.PValidates++
	var v uint64
	if validate {
		v = 1
	}
	m.emit(obs.ClassPValidate, obs.Instant, 0, int16(caller), PageBase(phys), v)
}

// ObserveSyscall counts one guest-kernel syscall entry.
func (m *Machine) ObserveSyscall(vmpl VMPL, sysno uint64) {
	m.trace.Syscalls++
	m.emit(obs.ClassSyscall, obs.Instant, 0, int16(vmpl), sysno, 0)
}

// ObserveAudit counts one emitted audit record of the given size.
func (m *Machine) ObserveAudit(vmpl VMPL, recordBytes uint64) {
	m.trace.AuditRecords++
	m.emit(obs.ClassAudit, obs.Instant, 0, int16(vmpl), recordBytes, 0)
}

// ObserveInterrupt counts one injected hardware interrupt (an automatic
// exit: no guest state crosses to the host).
func (m *Machine) ObserveInterrupt() {
	m.trace.Interrupts++
	m.trace.AutomaticExits++
	m.emit(obs.ClassInterrupt, obs.Instant, 0, -1, 0, 0)
}

// ObserveEnclaveExit counts one enclave → untrusted world transition.
func (m *Machine) ObserveEnclaveExit() {
	m.trace.EnclaveExits++
	m.emit(obs.ClassEnclaveExit, obs.Instant, 0, int16(VMPL2), 0, 0)
}

// ObserveFault records an architectural fault event (no trace counter
// exists for faults; under Veil's protections the first #NPF is terminal).
func (m *Machine) ObserveFault(f *Fault) {
	if f == nil {
		return
	}
	m.emit(obs.ClassFault, obs.Instant, 0, int16(f.VMPL), f.Phys, uint64(f.Kind))
}

// ObservePageState records one hypervisor page-state change batch starting
// at phys covering count pages (assign donates to the guest).
func (m *Machine) ObservePageState(phys uint64, count uint64, assign bool) {
	var a uint64
	if assign {
		a = 1
	}
	m.emit(obs.ClassPageState, obs.Instant, 0, -1, PageBase(phys), count<<1|a)
}
