package snp

import "veil/internal/obs"

// This file is the machine's observation layer: every architectural event
// the simulator counts flows through exactly one Observe* helper. Each
// helper maintains the legacy Trace counter for its event (so Trace stays a
// thin compatibility view over the same instrumentation) and, when a sink
// is attached, records a typed obs event stamped with the virtual cycle
// clock, the current VCPU, the acting VMPL and — new in obs v2 — the
// causal span context.
//
// Three sinks can be attached independently: the trace Recorder (sharded
// per-VCPU rings + metrics, veil-sim -trace), the Flight ring (small,
// always-on, feeds the post-mortem dump), and the audit hook (the online
// invariant auditor paces itself off the event stream). With none
// attached (the default for a bare Machine) every helper is a counter
// bump plus a nil check: the fast path performs no allocation, which
// TestNilRecorderMachineZeroAllocs pins with testing.AllocsPerRun.
//
// When a Recorder is attached it shadows the flight ring: the recorder's
// shards already retain at least the newest DefaultFlightCapacity events
// per VCPU, so the machine skips the second ring write on the hot path
// and the Flight* accessors derive the post-mortem tail (and its drop
// accounting) from the recorder instead. With no recorder the flight
// ring is fed directly, exactly as before — the always-on cheap path.

// SetRecorder attaches (or, with nil, detaches) an event recorder. The
// recorder also receives cycle attribution from the Clock, the cost-kind
// display names, the memory-path counters and the derived TLB gauges for
// its exporters.
func (m *Machine) SetRecorder(r *obs.Recorder) {
	m.rec = r
	r.SetCycleSource(func() []uint64 { return m.clock.byKind[:] })
	r.SetKindNames(CostKindNames())
	r.SetAuxCounters(m.memCounters)
	r.AddAuxGauges(m.memGauges)
}

// SetFlight attaches (or, with nil, detaches) the always-on flight ring
// that feeds the post-mortem dump. While a Recorder is also attached the
// ring is shadowed (see the package comment): it stays empty and the
// Flight* accessors read the recorder's tail instead.
func (m *Machine) SetFlight(f *obs.Flight) { m.flight = f }

// Flight returns the attached flight ring (nil when detached). Consumers
// that want the post-mortem event tail should use FlightTail and the
// FlightDropped* accessors, which also work when a recorder shadows the
// ring.
func (m *Machine) Flight() *obs.Flight { return m.flight }

// flightTailCap returns how many trailing events the post-mortem keeps.
func (m *Machine) flightTailCap() int {
	if m.flight != nil {
		return m.flight.Cap()
	}
	return obs.DefaultFlightCapacity
}

// FlightTail returns the newest flight-recorder events, oldest first:
// the recorder's merged tail when one is attached (shadow mode), the
// flight ring's contents otherwise.
func (m *Machine) FlightTail() []obs.Event {
	if m.rec != nil {
		return m.rec.Tail(m.flightTailCap())
	}
	return m.flight.Events()
}

// FlightTailLen returns how many events FlightTail would yield.
func (m *Machine) FlightTailLen() int {
	if m.rec != nil {
		n := int(m.rec.Total())
		if cap := m.flightTailCap(); n > cap {
			n = cap
		}
		if retained := m.rec.Len(); n > retained {
			n = retained
		}
		return n
	}
	return m.flight.Len()
}

// FlightDropped returns how many events the post-mortem tail can no
// longer show: everything ever recorded minus the tail.
func (m *Machine) FlightDropped() uint64 {
	if m.rec != nil {
		total := m.rec.Total()
		if tail := uint64(m.FlightTailLen()); total > tail {
			return total - tail
		}
		return 0
	}
	return m.flight.Dropped()
}

// FlightDroppedByClass breaks FlightDropped down per event class. In
// shadow mode it is the recorder's full-run class totals minus the tail's
// class counts; otherwise the flight ring's own eviction counters.
func (m *Machine) FlightDroppedByClass() [obs.NumClasses]uint64 {
	if m.rec != nil {
		met := m.rec.Metrics()
		var out [obs.NumClasses]uint64
		for c := obs.Class(0); c < obs.NumClasses; c++ {
			out[c] = met.Count(c)
		}
		for _, e := range m.FlightTail() {
			if e.Class < obs.NumClasses && out[e.Class] > 0 {
				out[e.Class]--
			}
		}
		return out
	}
	return m.flight.DroppedByClass()
}

// hasFlightSource reports whether a post-mortem event tail exists at all.
func (m *Machine) hasFlightSource() bool { return m.flight != nil || m.rec != nil }

// ObserveRingLatency feeds one batched-ring request latency (virtual
// cycles from SubmitSrv to the submitter observing the completion) into
// the recorder's per-VCPU latency histogram. No event is recorded and no
// cycles are charged — the latency layer must never perturb the cycle
// ledger the dark/tracing comparison pins.
func (m *Machine) ObserveRingLatency(cycles uint64) {
	if m.rec != nil {
		m.rec.RecordRingLatency(m.obsVCPU, cycles)
	}
}

// SetAuditHook installs (or, with nil, removes) the online invariant
// auditor's pacing hook. The hook runs after every recorded event; the
// machine guards against re-entry, so checks may themselves emit
// ClassInvariant events through ObserveInvariant.
func (m *Machine) SetAuditHook(fn func(obs.Event)) { m.auditHook = fn }

// memCounters surfaces the memory-path statistics (tlb.go) to obs
// exporters. Pull-based: called only when an exporter runs, so the TLB hot
// path stays event-free and the trace ring sees no extra traffic.
func (m *Machine) memCounters() ([]string, []uint64) {
	s := m.memStats
	return []string{"tlb-hit", "tlb-miss", "tlb-flush", "tlb-rmp-flush", "tlb-pt-invalidate", "span-read", "span-write"},
		[]uint64{s.TLBHits, s.TLBMisses, s.TLBFlushes, s.TLBRMPFlushes, s.TLBPTInvalidation, s.SpanReads, s.SpanWrites}
}

// memGauges derives the TLB hit rate from the raw counters so -metrics
// pages expose it directly instead of leaving the division to dashboards.
func (m *Machine) memGauges() ([]string, []float64) {
	s := m.memStats
	var rate float64
	if total := s.TLBHits + s.TLBMisses; total > 0 {
		rate = float64(s.TLBHits) / float64(total)
	}
	return []string{"tlb-hit-rate"}, []float64{rate}
}

// Recorder returns the attached recorder (nil when tracing is off).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// SetMachineID tags the machine with its fleet identity. BootFleet calls
// it for every member; single-machine runs keep the zero default.
func (m *Machine) SetMachineID(id int) { m.machineID = id }

// MachineID returns the fleet identity set by SetMachineID.
func (m *Machine) MachineID() int { return m.machineID }

// SetObsVCPU sets the hardware VCPU subsequent events are attributed to.
// The hypervisor calls this at its entry points (VMGEXIT, interrupt
// injection, VCPU start); machine-internal events inherit the last value.
func (m *Machine) SetObsVCPU(v int) { m.obsVCPU = int32(v) }

// observing reports whether any event sink is attached.
func (m *Machine) observing() bool {
	return m.rec != nil || m.flight != nil || m.auditHook != nil
}

// BeginSpan opens a causal span nested under the current one. With no
// sink attached it returns the zero ref, keeping the fast path free.
func (m *Machine) BeginSpan() obs.SpanRef {
	if !m.observing() {
		return obs.SpanRef{}
	}
	return m.spans.Begin()
}

// EndSpan closes a span opened with BeginSpan (zero refs no-op). Most
// producers never call it directly: the Observe helper that records the
// span's completion event closes it.
func (m *Machine) EndSpan(ref obs.SpanRef) {
	if ref.ID != 0 {
		m.spans.End(ref)
	}
}

// CurrentSpan returns the innermost open span's ID (zero when none).
func (m *Machine) CurrentSpan() uint64 { return m.spans.Current() }

// RootSpan returns the outermost open span's ID (zero when none): the
// originating request context VeilS-Channel propagates across machines.
func (m *Machine) RootSpan() uint64 { return m.spans.Root() }

// OpenSpans returns the open-span stack, outermost first.
func (m *Machine) OpenSpans() []uint64 { return m.spans.Open() }

// emit records one instant event under the current span, if a sink is
// attached.
func (m *Machine) emit(class obs.Class, kind obs.EventKind, dur uint64, vmpl int16, a1, a2 uint64) {
	m.emitSpan(class, kind, dur, vmpl, a1, a2, obs.SpanRef{})
}

// emitSpan records one event carrying an explicit span identity (the
// zero ref degrades to an instant under the current span). Every sink —
// recorder, flight ring, audit hook — sees the same event.
func (m *Machine) emitSpan(class obs.Class, kind obs.EventKind, dur uint64, vmpl int16, a1, a2 uint64, ref obs.SpanRef) {
	if !m.observing() {
		return
	}
	parent := ref.Parent
	if ref.ID == 0 {
		parent = m.spans.Current()
	}
	var ev obs.Event
	if m.rec != nil {
		// Zero-copy fast path: fill the ring slot in place (the recorder's
		// shards double as the flight tail, so no second ring write). Every
		// Event field must be assigned — Alloc returns the slot dirty.
		e := m.rec.Alloc(m.obsVCPU)
		e.TS, e.Dur, e.Arg1, e.Arg2 = m.clock.total, dur, a1, a2
		e.VCPU, e.VMPL = m.obsVCPU, vmpl
		e.Class, e.Kind = class, kind
		e.Span, e.Parent = ref.ID, parent
		if m.auditHook == nil {
			return
		}
		ev = *e
	} else {
		ev = obs.Event{
			TS: m.clock.total, Dur: dur, Arg1: a1, Arg2: a2,
			VCPU: m.obsVCPU, VMPL: vmpl, Class: class, Kind: kind,
			Span: ref.ID, Parent: parent,
		}
		m.flight.Record(ev)
	}
	if m.auditHook != nil && !m.inAudit {
		m.inAudit = true
		m.auditHook(ev)
		m.inAudit = false
	}
}

// ObserveVMGEXIT counts one non-automatic exit (VMSA state save).
func (m *Machine) ObserveVMGEXIT() {
	m.trace.VMGExits++
	m.emit(obs.ClassVMGEXIT, obs.Instant, 0, -1, 0, 0)
}

// ObserveVMENTER counts one VMENTER resume (VMSA state restore).
func (m *Machine) ObserveVMENTER() {
	m.trace.VMEnters++
	m.emit(obs.ClassVMENTER, obs.Instant, 0, -1, 0, 0)
}

// ObserveVMCall counts one plain exit on a non-SNP VM.
func (m *Machine) ObserveVMCall() {
	m.trace.VMCalls++
	m.emit(obs.ClassVMCALL, obs.Instant, 0, -1, 0, 0)
}

// ObserveRoundTrip records the span of one full VMGEXIT service round trip
// that began at startCycles, tagged with the GHCB exit code. ref is the
// causal span the hypervisor opened for the round trip; it is closed here.
func (m *Machine) ObserveRoundTrip(exitCode uint64, startCycles uint64, ref obs.SpanRef) {
	m.EndSpan(ref)
	m.emitSpan(obs.ClassRoundTrip, obs.Span, m.clock.total-startCycles, -1, exitCode, 0, ref)
}

// ObserveDomainSwitch counts one completed hypervisor-relayed domain switch
// from one VMPL to another, spanning from startCycles to now. The switch is
// a leaf span: it gets its own causal identity under the current span but
// never parents other events.
func (m *Machine) ObserveDomainSwitch(from, to VMPL, startCycles uint64) {
	m.trace.DomainSwitches++
	var ref obs.SpanRef
	if m.observing() {
		ref = m.spans.Leaf()
	}
	m.emitSpan(obs.ClassDomainSwitch, obs.Span, m.clock.total-startCycles, int16(from), uint64(from), uint64(to), ref)
}

// observeRMPAdjust counts one RMPADJUST by caller on the page at phys,
// setting target's permission vector to perms (machine-internal; the
// architectural mutators call it after their checks pass).
func (m *Machine) observeRMPAdjust(caller, target VMPL, phys uint64, perms Perm) {
	m.trace.RMPAdjusts++
	m.emit(obs.ClassRMPAdjust, obs.Instant, 0, int16(caller), PageBase(phys), uint64(target)<<8|uint64(perms))
}

// observePValidate counts one PVALIDATE on the page at phys.
func (m *Machine) observePValidate(caller VMPL, phys uint64, validate bool) {
	m.trace.PValidates++
	var v uint64
	if validate {
		v = 1
	}
	m.emit(obs.ClassPValidate, obs.Instant, 0, int16(caller), PageBase(phys), v)
}

// ObserveSyscallEnter counts one guest-kernel syscall entry and opens its
// causal span; everything the syscall causes — audit relays, domain
// switches, RMP instructions — nests under the returned ref until
// ObserveSyscallExit closes it.
func (m *Machine) ObserveSyscallEnter(vmpl VMPL, sysno uint64) obs.SpanRef {
	m.trace.Syscalls++
	return m.BeginSpan()
}

// ObserveSyscallExit records the syscall's span event (Dur covers entry to
// exit) and closes the causal span opened by ObserveSyscallEnter.
func (m *Machine) ObserveSyscallExit(vmpl VMPL, sysno uint64, startCycles uint64, ref obs.SpanRef) {
	m.EndSpan(ref)
	m.emitSpan(obs.ClassSyscall, obs.Span, m.clock.total-startCycles, int16(vmpl), sysno, 0, ref)
}

// ObserveService records one protected-service invocation dispatched by
// the monitor (svc/op from the IDCB request), spanning from startCycles.
// ref is the span the dispatcher opened; it is closed here.
func (m *Machine) ObserveService(vmpl VMPL, svc, op uint64, startCycles uint64, ref obs.SpanRef) {
	m.EndSpan(ref)
	m.emitSpan(obs.ClassService, obs.Span, m.clock.total-startCycles, int16(vmpl), svc, op, ref)
}

// ObserveEnclaveEnter records one completed SDK enclave call (scheduler
// hook through relayed switch and back), tagged with the enclave's domain
// tag. ref is the span the SDK opened; it is closed here.
func (m *Machine) ObserveEnclaveEnter(tag uint64, startCycles uint64, ref obs.SpanRef) {
	m.EndSpan(ref)
	m.emitSpan(obs.ClassEnclaveEnter, obs.Span, m.clock.total-startCycles, int16(VMPL2), tag, 0, ref)
}

// ObserveAudit counts one emitted audit record of the given size.
func (m *Machine) ObserveAudit(vmpl VMPL, recordBytes uint64) {
	m.trace.AuditRecords++
	m.emit(obs.ClassAudit, obs.Instant, 0, int16(vmpl), recordBytes, 0)
}

// ObserveInterrupt counts one injected hardware interrupt (an automatic
// exit: no guest state crosses to the host).
func (m *Machine) ObserveInterrupt() {
	m.trace.Interrupts++
	m.trace.AutomaticExits++
	m.emit(obs.ClassInterrupt, obs.Instant, 0, -1, 0, 0)
}

// ObserveEnclaveExit counts one enclave → untrusted world transition.
func (m *Machine) ObserveEnclaveExit() {
	m.trace.EnclaveExits++
	m.emit(obs.ClassEnclaveExit, obs.Instant, 0, int16(VMPL2), 0, 0)
}

// ObserveFault records an architectural fault event. Halting #NPFs reach
// it through Halt; the non-halting fault paths (#GP refusals, guest #PF)
// call it at the point the fault is minted, so attack suites leave
// machine-checkable evidence even when the CVM survives.
func (m *Machine) ObserveFault(f *Fault) {
	if f == nil {
		return
	}
	m.emit(obs.ClassFault, obs.Instant, 0, int16(f.VMPL), f.Phys, uint64(f.Kind))
}

// DeniedReason classifies refused-but-survivable operations for
// ClassDenied events (Arg1).
type DeniedReason uint64

const (
	// DeniedHVRead: hypervisor read of a guest-assigned page blocked.
	DeniedHVRead DeniedReason = iota
	// DeniedHVWrite: hypervisor write to a guest-assigned page blocked.
	DeniedHVWrite
	// DeniedSanitize: the monitor's sanitizer rejected an OS-supplied
	// address range (§5.2).
	DeniedSanitize
	// DeniedPinned: the kernel refused to retype or unmap a region pinned
	// by a protected service (§7).
	DeniedPinned
	// DeniedGHCB: the hypervisor could not read the GHCB the exiting VCPU
	// pointed at (unmapped or guest-private page).
	DeniedGHCB
	// DeniedPolicy: a domain-switch request refused by GHCB policy.
	DeniedPolicy
	// DeniedRing: a ring descriptor refused by the monitor's drain-time
	// re-validation (bad sequence, oversized lengths, payload pointers
	// into protected regions, or RMP permissions the submitter lacks).
	DeniedRing
	// DeniedIntrRoute: the SMP scheduler detected that a completion
	// interrupt never reached the VCPU blocked on it (the host misrouted
	// it to another VCPU or swallowed it), and refused to keep scheduling
	// rather than deadlock (context = the stranded VCPU).
	DeniedIntrRoute
	// DeniedChannel: VeilS-Channel refused a cross-CVM session or message
	// — an unverifiable or mismeasured peer report, a handshake transcript
	// that does not match the live nonces (replayed report), or a sealed
	// frame that failed authenticated decryption (fabric-level replay,
	// reorder or tamper). Context = the peer machine id.
	DeniedChannel
)

var deniedReasonNames = [...]string{
	DeniedHVRead:    "hv-read",
	DeniedHVWrite:   "hv-write",
	DeniedSanitize:  "sanitize",
	DeniedPinned:    "pinned",
	DeniedGHCB:      "ghcb",
	DeniedPolicy:    "policy",
	DeniedRing:      "ring",
	DeniedIntrRoute: "intr-route",
	DeniedChannel:   "channel",
}

// String returns the refusal class's catalog name, so attack evidence and
// model-checker counterexamples print "intr-route" instead of "7".
func (r DeniedReason) String() string {
	if int(r) < len(deniedReasonNames) {
		return deniedReasonNames[r]
	}
	return "denied(?)"
}

// ObserveDenied records one refused-but-survivable operation: sanitizer
// rejections, blocked hypervisor accesses, policy refusals. These are the
// defence-held breadcrumbs the attack suites assert on.
func (m *Machine) ObserveDenied(reason DeniedReason, context uint64) {
	m.emit(obs.ClassDenied, obs.Instant, 0, -1, uint64(reason), context)
}

// ObserveNetTx records one cross-CVM frame leaving this machine with
// fleet trace context attached: trace is the packed origin ref, span the
// packed sender-local span ref (see obs.PackTraceRef). An instant with no
// cycle charge — tracing must not perturb the ledger.
func (m *Machine) ObserveNetTx(trace, span uint64) {
	m.emit(obs.ClassNetTx, obs.Instant, 0, -1, trace, span)
}

// ObserveNetRx records one cross-CVM frame arriving at this machine,
// stamped with the trace context it carried. Emitted under the current
// span (the delivery service invocation), so refusal evidence recorded
// while handling the frame shares its Parent and joins the trace.
func (m *Machine) ObserveNetRx(trace, span uint64) {
	m.emit(obs.ClassNetRx, obs.Instant, 0, -1, trace, span)
}

// ObserveInvariant records one invariant-auditor violation report: check
// is the auditor's catalog index, violations how many sites the check
// found this pass. Clean runs never emit one.
func (m *Machine) ObserveInvariant(check uint64, violations uint64) {
	m.emit(obs.ClassInvariant, obs.Instant, 0, -1, check, violations)
}

// ObserveRingSubmit counts one descriptor posted to a submission ring by
// the given VMPL. An instant, not a span: submission crosses no privilege
// boundary, which is exactly what the batched path buys.
func (m *Machine) ObserveRingSubmit(vmpl VMPL, seq uint64, svc uint64) {
	m.emit(obs.ClassRingSubmit, obs.Instant, 0, int16(vmpl), seq, svc)
}

// ObserveRingDrain records the span of one doorbell-triggered batch drain
// that began at startCycles: drained descriptors were dispatched, refused
// ones failed re-validation. ref is the span the monitor opened for the
// drain; it is closed here.
func (m *Machine) ObserveRingDrain(vmpl VMPL, drained, refused uint64, startCycles uint64, ref obs.SpanRef) {
	m.EndSpan(ref)
	m.emitSpan(obs.ClassRingDrain, obs.Span, m.clock.total-startCycles, int16(vmpl), drained, refused, ref)
}

// ObserveSchedSlice records the span of one SMP-scheduler slice that began
// at startCycles: a bounded burst of work (kind 0 = task step, 1 = deferred
// ring drain) whose cycles are charged to the given VCPU. Like a domain
// switch it is a leaf span: it never parents other events.
func (m *Machine) ObserveSchedSlice(vcpu int, kind uint64, startCycles uint64) {
	var ref obs.SpanRef
	if m.observing() {
		ref = m.spans.Leaf()
	}
	m.emitSpan(obs.ClassSchedSlice, obs.Span, m.clock.total-startCycles, -1, uint64(vcpu), kind, ref)
}

// ObservePageState records one hypervisor page-state change batch starting
// at phys covering count pages (assign donates to the guest).
func (m *Machine) ObservePageState(phys uint64, count uint64, assign bool) {
	var a uint64
	if assign {
		a = 1
	}
	m.emit(obs.ClassPageState, obs.Instant, 0, -1, PageBase(phys), count<<1|a)
}
