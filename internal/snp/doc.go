// Package snp models the AMD SEV-SNP hardware surface that Veil depends on.
//
// The model is a deterministic, synchronous software implementation of the
// architectural features described in §3 of the Veil paper (ASPLOS '23):
//
//   - guest physical memory divided into 4 KiB pages;
//   - the reverse map table (RMP) tracking page ownership, validation state,
//     and per-VMPL access permissions;
//   - the RMPADJUST and PVALIDATE instructions with their privilege rules;
//   - virtual machine save areas (VMSAs) holding per-VCPU-instance register
//     state, created at a fixed VMPL for the lifetime of the instance;
//   - the guest-hypervisor communication block (GHCB) and its MSR;
//   - nested page faults (#NPF) which, as on real SNP hardware in the
//     configurations Veil uses, halt the CVM;
//   - a virtual cycle counter whose per-event costs are calibrated to the
//     micro-measurements reported in §9.1 of the paper.
//
// Every guest access to protected state goes through AccessContext, which
// enforces both the x86 page-table permissions (CPL) and the RMP permissions
// (VMPL), so the security experiments in §8 of the paper exercise real
// checks rather than assertions.
package snp
