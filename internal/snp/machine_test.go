package snp

import (
	"strings"
	"testing"
)

// testMachine returns a small machine with the first `assigned` pages
// donated and validated, with full VMPL0 permissions.
func testMachine(t *testing.T, pages, assigned int) *Machine {
	t.Helper()
	m := NewMachine(Config{MemBytes: uint64(pages) * PageSize, VCPUs: 1})
	for i := 0; i < assigned; i++ {
		phys := uint64(i) * PageSize
		if err := m.HVAssignPage(phys); err != nil {
			t.Fatalf("assign page %d: %v", i, err)
		}
		if err := m.PValidate(VMPL0, phys, true); err != nil {
			t.Fatalf("validate page %d: %v", i, err)
		}
	}
	return m
}

func TestNewMachineRoundsUpToPages(t *testing.T) {
	m := NewMachine(Config{MemBytes: PageSize + 1, VCPUs: 1})
	if got := m.NumPages(); got != 2 {
		t.Fatalf("NumPages = %d, want 2", got)
	}
	if m.Config().MemBytes != 2*PageSize {
		t.Fatalf("MemBytes = %d, want %d", m.Config().MemBytes, 2*PageSize)
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemBytes != 2<<30 || cfg.VCPUs != 4 {
		t.Fatalf("DefaultConfig = %+v, want 2 GB / 4 VCPUs", cfg)
	}
}

func TestSharedPageAccessibleToBothSides(t *testing.T) {
	m := testMachine(t, 4, 0) // all pages shared
	msg := []byte("bounce")
	if err := m.GuestWritePhys(VMPL3, CPL0, 0, msg); err != nil {
		t.Fatalf("guest write to shared page: %v", err)
	}
	got := make([]byte, len(msg))
	if err := m.HVReadPhys(0, got); err != nil {
		t.Fatalf("hypervisor read of shared page: %v", err)
	}
	if string(got) != "bounce" {
		t.Fatalf("hypervisor read %q, want %q", got, "bounce")
	}
	if err := m.HVWritePhys(0, []byte("reply")); err != nil {
		t.Fatalf("hypervisor write to shared page: %v", err)
	}
	if err := m.GuestReadPhys(VMPL3, CPL3, 0, got[:5]); err != nil {
		t.Fatalf("guest read back: %v", err)
	}
	if string(got[:5]) != "reply" {
		t.Fatalf("guest read %q, want %q", got[:5], "reply")
	}
}

func TestExecFromSharedPageFaults(t *testing.T) {
	m := testMachine(t, 2, 0)
	err := m.GuestExecCheckPhys(VMPL3, CPL0, 0)
	if !IsNPF(err) {
		t.Fatalf("exec from shared page: err = %v, want #NPF", err)
	}
	if m.Halted() == nil {
		t.Fatal("machine should halt on #NPF")
	}
}

func TestHypervisorBlockedFromAssignedPages(t *testing.T) {
	m := testMachine(t, 2, 2)
	secret := []byte("secret")
	if err := m.GuestWritePhys(VMPL0, CPL0, 0, secret); err != nil {
		t.Fatalf("guest write: %v", err)
	}
	buf := make([]byte, 6)
	if err := m.HVReadPhys(0, buf); err == nil {
		t.Fatal("hypervisor read of assigned page must fail")
	}
	if err := m.HVWritePhys(0, []byte("tamper")); err == nil {
		t.Fatal("hypervisor write to assigned page must fail")
	}
}

func TestUnvalidatedPageFaults(t *testing.T) {
	m := testMachine(t, 2, 0)
	if err := m.HVAssignPage(0); err != nil {
		t.Fatal(err)
	}
	err := m.GuestReadPhys(VMPL0, CPL0, 0, make([]byte, 1))
	if !IsNPF(err) {
		t.Fatalf("read of unvalidated page: err = %v, want #NPF", err)
	}
}

func TestPValidateRequiresVMPL0(t *testing.T) {
	m := testMachine(t, 2, 0)
	if err := m.HVAssignPage(0); err != nil {
		t.Fatal(err)
	}
	err := m.PValidate(VMPL3, 0, true)
	if !IsGP(err) {
		t.Fatalf("PVALIDATE at VMPL3: err = %v, want #GP", err)
	}
	if m.Halted() != nil {
		t.Fatal("#GP on PVALIDATE should not halt the CVM")
	}
	if err := m.PValidate(VMPL0, 0, true); err != nil {
		t.Fatalf("PVALIDATE at VMPL0: %v", err)
	}
	// Double validation is flagged (the delegation layer treats it as a
	// kernel bug / attack signal).
	if err := m.PValidate(VMPL0, 0, true); err == nil {
		t.Fatal("double PVALIDATE should error")
	}
}

func TestPValidateScrubsPage(t *testing.T) {
	m := testMachine(t, 2, 0)
	// Hypervisor plants data in the page before donating it.
	if err := m.HVWritePhys(0, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := m.HVAssignPage(0); err != nil {
		t.Fatal(err)
	}
	if err := m.PValidate(VMPL0, 0, true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if err := m.GuestReadPhys(VMPL0, CPL0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatalf("validated page not scrubbed: % x", buf)
	}
}

func TestRMPAdjustRestrictsLowerVMPL(t *testing.T) {
	m := testMachine(t, 2, 2)
	// VMPL0 grants VMPL3 read-only.
	if err := m.RMPAdjust(VMPL0, 0, VMPL3, PermRead); err != nil {
		t.Fatalf("RMPADJUST: %v", err)
	}
	if err := m.GuestReadPhys(VMPL3, CPL0, 0, make([]byte, 8)); err != nil {
		t.Fatalf("VMPL3 read after grant: %v", err)
	}
	err := m.GuestWritePhys(VMPL3, CPL0, 0, []byte("x"))
	if !IsNPF(err) {
		t.Fatalf("VMPL3 write: err = %v, want #NPF", err)
	}
	if m.Halted() == nil {
		t.Fatal("write violation must halt the CVM")
	}
}

func TestRMPAdjustCannotTargetSelfOrHigher(t *testing.T) {
	m := testMachine(t, 2, 2)
	for _, target := range []VMPL{VMPL0, VMPL1} {
		err := m.RMPAdjust(VMPL1, 0, target, PermAll)
		if !IsGP(err) {
			t.Fatalf("RMPADJUST VMPL1→%s: err = %v, want #GP", target, err)
		}
	}
}

func TestRMPAdjustByRestrictedCallerHalts(t *testing.T) {
	m := testMachine(t, 2, 2)
	// VeilMon-style restriction: VMPL3 gets no access to page 0.
	if err := m.RMPAdjust(VMPL0, 0, VMPL3, PermNone); err != nil {
		t.Fatal(err)
	}
	// The OS tries to lift the restriction itself (§5.1): #NPF + halt.
	err := m.RMPAdjust(VMPL3, 0, VMPL3+0, PermAll) // target must be < caller anyway
	if !IsGP(err) && !IsNPF(err) {
		t.Fatalf("OS RMPADJUST: err = %v, want fault", err)
	}
}

func TestRMPAdjustCannotGrantBeyondOwn(t *testing.T) {
	m := testMachine(t, 2, 2)
	// VMPL0 grants VMPL1 read/write only (no exec).
	if err := m.RMPAdjust(VMPL0, 0, VMPL1, PermRW); err != nil {
		t.Fatal(err)
	}
	// VMPL1 then tries to grant VMPL2 exec, which it does not hold.
	err := m.RMPAdjust(VMPL1, 0, VMPL2, PermRX)
	if !IsGP(err) {
		t.Fatalf("grant beyond own perms: err = %v, want #GP", err)
	}
	// Granting within its own perms is fine.
	if err := m.RMPAdjust(VMPL1, 0, VMPL2, PermRead); err != nil {
		t.Fatalf("grant within own perms: %v", err)
	}
}

func TestHaltIsSticky(t *testing.T) {
	m := testMachine(t, 2, 2)
	if err := m.RMPAdjust(VMPL0, 0, VMPL3, PermNone); err != nil {
		t.Fatal(err)
	}
	if err := m.GuestReadPhys(VMPL3, CPL0, 0, make([]byte, 1)); !IsNPF(err) {
		t.Fatalf("want #NPF, got %v", err)
	}
	// Every subsequent operation reports the halt.
	if err := m.GuestReadPhys(VMPL0, CPL0, PageSize, make([]byte, 1)); err != ErrHalted {
		t.Fatalf("post-halt read: err = %v, want ErrHalted", err)
	}
	if err := m.RMPAdjust(VMPL0, 0, VMPL1, PermAll); err != ErrHalted {
		t.Fatalf("post-halt RMPADJUST: err = %v, want ErrHalted", err)
	}
}

func TestVMSACreationRules(t *testing.T) {
	m := testMachine(t, 4, 4)
	state := VMSA{VCPUID: 1, VMPL: VMPL3, CPL: CPL0, RIP: 0x1000}
	// Only VMPL0 can create VMSAs (Table 1: "Create VCPU at Dom-MON").
	if err := m.CreateVMSA(VMPL3, PageSize, state); !IsGP(err) {
		t.Fatalf("CreateVMSA at VMPL3: err = %v, want #GP", err)
	}
	if err := m.CreateVMSA(VMPL0, PageSize, state); err != nil {
		t.Fatalf("CreateVMSA at VMPL0: %v", err)
	}
	// The VMSA page is now inaccessible to everyone via normal accesses.
	for _, v := range []VMPL{VMPL0, VMPL3} {
		if err := m.GuestReadPhys(v, CPL0, PageSize, make([]byte, 1)); !IsNPF(err) {
			t.Fatalf("VMSA page read at %s: err = %v, want #NPF", v, err)
		}
		m.halted = nil // reset for next probe
	}
	got, err := m.VMSAAt(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got.VMPL != VMPL3 || got.RIP != 0x1000 {
		t.Fatalf("VMSA content = %+v", got)
	}
}

func TestVMSAUpdateRequiresVMPL0(t *testing.T) {
	m := testMachine(t, 4, 4)
	if err := m.CreateVMSA(VMPL0, PageSize, VMSA{VCPUID: 0, VMPL: VMPL2}); err != nil {
		t.Fatal(err)
	}
	err := m.UpdateVMSA(VMPL3, PageSize, func(v *VMSA) { v.RIP = 0xdead })
	if !IsGP(err) {
		t.Fatalf("UpdateVMSA at VMPL3: err = %v, want #GP", err)
	}
	if err := m.UpdateVMSA(VMPL0, PageSize, func(v *VMSA) { v.RIP = 0x2000 }); err != nil {
		t.Fatal(err)
	}
	v, _ := m.VMSAAt(PageSize)
	if v.RIP != 0x2000 {
		t.Fatalf("RIP = %#x, want 0x2000", v.RIP)
	}
}

func TestBootVMSAAlwaysVMPL0(t *testing.T) {
	m := NewMachine(Config{MemBytes: 4 * PageSize, VCPUs: 1})
	if err := m.HVCreateBootVMSA(0, VMSA{VMPL: VMPL3}); err == nil {
		t.Fatal("boot VMSA at VMPL3 must be rejected")
	}
	if err := m.HVCreateBootVMSA(0, VMSA{VMPL: VMPL0, VCPUID: 0}); err != nil {
		t.Fatal(err)
	}
	v, err := m.VMSAAt(0)
	if err != nil || !v.Runnable {
		t.Fatalf("boot VMSA = %+v, err = %v", v, err)
	}
}

func TestGHCBRoundTrip(t *testing.T) {
	m := testMachine(t, 4, 0) // shared pages
	in := &GHCB{ExitCode: 7, ExitInfo1: 1, ExitInfo2: 2, SwScratch: 0xfeed}
	copy(in.Payload[:], "hello ghcb")
	if err := m.GuestWriteGHCB(VMPL3, CPL0, 0, in); err != nil {
		t.Fatal(err)
	}
	var out GHCB
	if err := m.HVReadGHCB(0, &out); err != nil {
		t.Fatal(err)
	}
	if out.ExitCode != 7 || out.SwScratch != 0xfeed || string(out.Payload[:10]) != "hello ghcb" {
		t.Fatalf("GHCB mismatch: %+v", out)
	}
	// Hypervisor reply path.
	out.ExitInfo1 = 99
	if err := m.HVWriteGHCB(0, &out); err != nil {
		t.Fatal(err)
	}
	var back GHCB
	if err := m.GuestReadGHCB(VMPL3, CPL3, 0, &back); err != nil {
		t.Fatal(err)
	}
	if back.ExitInfo1 != 99 {
		t.Fatalf("ExitInfo1 = %d, want 99", back.ExitInfo1)
	}
}

func TestGHCBOnPrivatePageInvisibleToHV(t *testing.T) {
	m := testMachine(t, 2, 2)
	in := &GHCB{ExitCode: 1}
	if err := m.GuestWriteGHCB(VMPL0, CPL0, 0, in); err != nil {
		t.Fatalf("guest write GHCB on own page: %v", err)
	}
	var out GHCB
	if err := m.HVReadGHCB(0, &out); err == nil {
		t.Fatal("hypervisor must not read a private-page GHCB")
	}
}

func TestWriteGHCBMSRRequiresCPL0(t *testing.T) {
	m := testMachine(t, 2, 0)
	if err := m.WriteGHCBMSR(0, CPL3, 0); !IsGP(err) {
		t.Fatalf("wrmsr at CPL3: err = %v, want #GP", err)
	}
	if err := m.WriteGHCBMSR(0, CPL0, PageSize); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.ReadGHCBMSR(0); !ok || got != PageSize {
		t.Fatalf("ReadGHCBMSR = %#x,%v", got, ok)
	}
}

func TestFaultErrorStrings(t *testing.T) {
	f := &Fault{Kind: FaultNPF, VMPL: VMPL3, CPL: CPL0, Access: AccessWrite, Why: "test"}
	if !strings.Contains(f.Error(), "#NPF") || !strings.Contains(f.Error(), "VMPL3") {
		t.Fatalf("fault string: %s", f.Error())
	}
	if FaultPF.String() != "#PF" || FaultGP.String() != "#GP" {
		t.Fatal("fault kind strings")
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone:                       "----",
		PermRead:                       "r---",
		PermRW:                         "rw--",
		PermAll:                        "rwus",
		PermRead | PermUserExec:        "r-u-",
		PermWrite | PermSupervisorExec: "-w-s",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%08b).String() = %q, want %q", uint8(p), got, want)
		}
	}
}

func TestCrossPagePhysAccessRejected(t *testing.T) {
	m := testMachine(t, 2, 2)
	err := m.GuestReadPhys(VMPL0, CPL0, PageSize-4, make([]byte, 8))
	if err == nil {
		t.Fatal("cross-page physical access must be rejected")
	}
}

func TestClockAttribution(t *testing.T) {
	m := testMachine(t, 2, 2)
	before := m.Clock().Snapshot()
	if err := m.RMPAdjust(VMPL0, 0, VMPL3, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := m.Clock().SinceOf(before, CostRMPADJUST); got != CyclesRMPADJUST {
		t.Fatalf("RMPADJUST cycles = %d, want %d", got, CyclesRMPADJUST)
	}
	if m.Clock().Since(before) != CyclesRMPADJUST {
		t.Fatal("total cycles should match attributed cycles")
	}
}

func TestClockSeconds(t *testing.T) {
	var c Clock
	c.Charge(CostCompute, SimClockHz)
	if s := c.Seconds(); s != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", s)
	}
}

func TestCostKindStrings(t *testing.T) {
	if CostVMGEXIT.String() != "VMGEXIT" || CostPageHash.String() != "page-hash" {
		t.Fatal("cost kind names")
	}
}

func TestDomainSwitchCostSplit(t *testing.T) {
	if CyclesVMGEXITSave+CyclesVMENTERRestore != CyclesDomainSwitch {
		t.Fatal("switch halves must sum to the measured 7135 cycles")
	}
}
