package snp

import "sync"

// Machine backing pool: the two large per-machine allocations — guest
// physical memory and the RMP — recycled across boots. Benchmark harnesses
// boot hundreds of identically-sized machines per run (and, under the
// veil-bench -j worker pool, several at once); drawing the backing arrays
// from a pool turns each boot's dominant allocation into a memclr of
// already-resident pages instead of a fresh multi-megabyte heap grow plus
// first-touch fault sweep, and takes the matching load off the collector.
//
// Reuse is invisible to the simulation: a recycled backing is cleared
// before NewMachine returns, so a pooled machine starts from exactly the
// all-zero state a fresh one does and every deterministic output is
// unchanged. The pools are sync.Pools behind a size-keyed registry, so
// retained memory stays reclaimable by the collector when no machine of
// that size is booted again.

// machineBacking bundles one machine's poolable backing arrays. mem and
// rmp always describe the same page count.
type machineBacking struct {
	mem []byte
	rmp []RMPEntry
}

// backingPools maps a machine's page count to the *sync.Pool of
// *machineBacking recycled for that size.
var backingPools sync.Map

func poolFor(pages uint64) *sync.Pool {
	if p, ok := backingPools.Load(pages); ok {
		return p.(*sync.Pool)
	}
	p, _ := backingPools.LoadOrStore(pages, &sync.Pool{})
	return p.(*sync.Pool)
}

// acquireBacking returns a cleared recycled backing for a machine of the
// given page count, or nil when the pool has none.
func acquireBacking(pages uint64) *machineBacking {
	b, _ := poolFor(pages).Get().(*machineBacking)
	if b == nil {
		return nil
	}
	clear(b.mem)
	clear(b.rmp)
	return b
}

// releaseBacking returns a backing to its size's pool.
func releaseBacking(b *machineBacking) {
	poolFor(uint64(len(b.rmp))).Put(b)
}

// Release returns the machine's backing memory to the boot pool. The
// machine — and anything aliasing its memory: access contexts, span
// windows, SpanCursors — must not be used afterwards; callers own that
// lifetime (the bench harness releases only machines whose experiments
// have fully read their results). Releasing twice is a no-op.
func (m *Machine) Release() {
	if m.mem == nil {
		return
	}
	// Invalidate any outstanding SpanCursor: a cursor caches a slice of
	// m.mem plus a tlbGen snapshot, and the backing may next belong to a
	// different machine.
	m.tlbGen++
	releaseBacking(&machineBacking{mem: m.mem, rmp: m.rmp})
	m.mem = nil
	m.rmp = nil
	m.tlb = nil
	m.ptPages = nil
	m.ptGen = nil
}
