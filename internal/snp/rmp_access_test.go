package snp

import "testing"

// TestGuestAccessOKMatchesCheck pins the allocation-free guestAccessOK to
// checkGuestAccess over the entire RMPEntry decision space: every
// combination of the VMSA/Assigned/Validated bits, every permission vector
// at every VMPL, probed at every (VMPL, CPL, Access) triple including one
// architecturally invalid VMPL. If the two implementations ever drift, the
// auditor would silently disagree with the enforcement path it audits.
func TestGuestAccessOKMatchesCheck(t *testing.T) {
	cpls := []CPL{CPL0, CPL3}
	accesses := []Access{AccessRead, AccessWrite, AccessExec}
	probeVMPLs := []VMPL{VMPL0, VMPL1, VMPL2, VMPL3, VMPL(7)}

	var cases int
	for bits := 0; bits < 8; bits++ {
		e := RMPEntry{
			Assigned:  bits&1 != 0,
			Validated: bits&2 != 0,
			VMSA:      bits&4 != 0,
		}
		// Sweep each VMPL's permission nibble independently; cross-VMPL
		// coupling does not exist in either implementation, so one hot
		// level at a time with the others at PermNone/PermAll covers the
		// decision space.
		for hot := VMPL0; hot < NumVMPLs; hot++ {
			for p := Perm(0); p <= PermAll; p++ {
				for _, rest := range []Perm{PermNone, PermAll} {
					e.Perms = [NumVMPLs]Perm{rest, rest, rest, rest}
					e.Perms[hot] = p
					for _, v := range probeVMPLs {
						for _, cpl := range cpls {
							for _, a := range accesses {
								cases++
								gotOK := e.guestAccessOK(v, cpl, a)
								err := e.checkGuestAccess(v, cpl, a)
								if gotOK != (err == nil) {
									t.Fatalf("drift: entry=%+v probe=(%s,%s,%s): guestAccessOK=%v checkGuestAccess=%v",
										e, v, cpl, a, gotOK, err)
								}
							}
						}
					}
				}
			}
		}
	}
	if cases == 0 {
		t.Fatal("no cases exercised")
	}
}

// guestAccessOK must not allocate: the auditor probes VMSA pages on every
// paced fast pass, and the healthy outcome is a denial on every probe.
func TestGuestAccessOKAllocFree(t *testing.T) {
	e := RMPEntry{Assigned: true, Validated: true, VMSA: true}
	allocs := testing.AllocsPerRun(100, func() {
		for v := VMPL0; v < NumVMPLs; v++ {
			if e.guestAccessOK(v, CPL0, AccessRead) {
				t.Fatal("VMSA page readable")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("guestAccessOK allocated %.1f times per run; want 0", allocs)
	}
}
