package snp

import (
	"encoding/json"
	"fmt"
)

// This file is the single source of truth for the simulator's cost model.
// The virtual cycle counter stands in for RDTSC in the paper's evaluation;
// each constant is either a direct measurement from §9 of the paper or is
// derived from one (see DESIGN.md §5 for the derivations).

// CostKind labels a class of architectural event for cycle accounting.
type CostKind int

const (
	CostVMGEXIT CostKind = iota
	CostVMENTER
	CostVMCALL
	CostRMPADJUST
	CostPVALIDATE
	CostSyscall
	CostPageCopy
	CostPageEncrypt
	CostPageHash
	CostContextSwitch
	CostInterrupt
	CostCompute // generic workload computation
	// CostIdle is virtual time a machine spends quiescent waiting for an
	// external event — in a fleet, the cycles a clock domain skips forward
	// while rendezvousing with a fabric message from a peer machine. Idle
	// cycles advance the clock (virtual time keeps flowing) but represent
	// no executed work, so they get their own attribution bucket rather
	// than polluting CostCompute.
	CostIdle
	numCostKinds
)

var costKindNames = [...]string{
	"VMGEXIT", "VMENTER", "VMCALL", "RMPADJUST", "PVALIDATE",
	"syscall", "page-copy", "page-encrypt", "page-hash",
	"context-switch", "interrupt", "compute", "idle",
}

func (k CostKind) String() string {
	if k >= 0 && int(k) < len(costKindNames) {
		return costKindNames[k]
	}
	return fmt.Sprintf("cost(%d)", int(k))
}

// NumCostKinds is the number of defined cost kinds.
const NumCostKinds = int(numCostKinds)

// CostKindNames returns the display names of all cost kinds, indexed by
// CostKind value (a copy; exporters register it with obs recorders).
func CostKindNames() []string {
	out := make([]string, len(costKindNames))
	copy(out, costKindNames[:])
	return out
}

// Cost model constants, in virtual cycles.
const (
	// CyclesDomainSwitch is the round-trip cost of a hypervisor-relayed
	// domain switch: VMGEXIT with full VMSA state save plus VMENTER with
	// state restore of the target instance. §9.1 measures 7135 cycles.
	CyclesDomainSwitch = 7135

	// CyclesVMGEXITSave is the exit half of a domain switch (state save
	// plus hypervisor dispatch); CyclesVMENTERRestore is the entry half.
	// They sum to CyclesDomainSwitch.
	CyclesVMGEXITSave    = 3890
	CyclesVMENTERRestore = CyclesDomainSwitch - CyclesVMGEXITSave

	// CyclesVMCALL is a plain exit on a non-SNP VM, for the §9.1
	// comparison: ~1100 cycles on the paper's machine.
	CyclesVMCALL = 1100

	// CyclesRMPADJUST covers one RMPADJUST instruction. CyclesColdPageTouch
	// is the first-touch cost of a cold page. Derived jointly: Veil's boot
	// sweep issues three RMPADJUSTs per page (one permission vector each
	// for VMPL1-3) plus one cold touch; over the 524288 pages of the 2 GB
	// testbed guest that sweep must account for >70% of the ~2 s boot
	// delta at 1.9 GHz (§9.1), giving ~5080 cycles/page.
	CyclesRMPADJUST     = 560
	CyclesColdPageTouch = 3400

	// CyclesPVALIDATE is a page-state validation; cheaper than RMPADJUST
	// because no permission vector rewrite occurs.
	CyclesPVALIDATE = 240

	// CyclesSyscall is the native in-kernel syscall entry/exit cost
	// (SYSENTER path), exclusive of the work the syscall performs.
	CyclesSyscall = 300

	// CyclesPageCopy4K is a 4 KiB memory copy (~5.9 bytes/cycle).
	CyclesPageCopy4K = 700

	// CyclesPageEncrypt4K is AES-256-GCM over one page, used by VeilS-Enc
	// demand paging (~1 cycle/byte plus setup).
	CyclesPageEncrypt4K = 4200

	// CyclesPageHash4K is SHA-256 over one page plus metadata (~1.3
	// cycles/byte), used for measurement and freshness hashes.
	CyclesPageHash4K = 5200

	// CyclesContextSwitch is an intra-kernel process switch.
	CyclesContextSwitch = 1800

	// CyclesInterrupt is the delivery cost of a hardware interrupt into
	// the guest, exclusive of any exit.
	CyclesInterrupt = 900

	// SimClockHz converts virtual cycles to seconds: the EPYC 7313P in the
	// paper's testbed has a ~1.9 GHz base clock with 16 cores.
	SimClockHz = 1_900_000_000
)

// Clock is the machine's virtual cycle counter with per-kind attribution.
// It is not safe for concurrent use; the simulator is single-threaded by
// design so that every run is deterministic.
//
// An attached obs recorder reads the attribution table pull-based via
// SetCycleSource (wired in Machine.SetRecorder); Charge itself carries no
// recorder hook, so the cost model's hottest function is identical with
// and without tracing.
type Clock struct {
	total  uint64
	byKind [numCostKinds]uint64
}

// Charge advances the clock by n cycles attributed to kind k.
func (c *Clock) Charge(k CostKind, n uint64) {
	c.total += n
	if k >= 0 && int(k) < len(c.byKind) {
		c.byKind[k] += n
	}
}

// Cycles returns the total elapsed virtual cycles.
func (c *Clock) Cycles() uint64 { return c.total }

// AdvanceTo moves the clock forward to the target cycle count, charging
// the gap to kind k (CostIdle for fleet rendezvous waits). A target at or
// behind the current time is a no-op: virtual time never runs backwards.
func (c *Clock) AdvanceTo(target uint64, k CostKind) {
	if target > c.total {
		c.Charge(k, target-c.total)
	}
}

// CyclesOf returns the cycles attributed to a single event kind.
func (c *Clock) CyclesOf(k CostKind) uint64 {
	if int(k) >= len(c.byKind) {
		return 0
	}
	return c.byKind[k]
}

// Seconds converts the total elapsed cycles to seconds of simulated time.
func (c *Clock) Seconds() float64 { return float64(c.total) / SimClockHz }

// Snapshot returns a copy of the clock for differential measurements.
func (c *Clock) Snapshot() Clock { return *c }

// Since returns total cycles elapsed since an earlier snapshot.
func (c *Clock) Since(prev Clock) uint64 { return c.total - prev.total }

// SinceOf returns cycles of kind k elapsed since an earlier snapshot.
func (c *Clock) SinceOf(prev Clock, k CostKind) uint64 {
	if int(k) >= len(c.byKind) {
		return 0
	}
	return c.byKind[k] - prev.byKind[k]
}

// Attribution is a per-CostKind cycle breakdown: index with a CostKind to
// read that kind's share. It is the flame-graph-style decomposition the
// bench reports and the obs exporters print.
type Attribution [numCostKinds]uint64

// Total returns the sum over all kinds.
func (a Attribution) Total() uint64 {
	var t uint64
	for _, v := range a {
		t += v
	}
	return t
}

// Add accumulates another attribution into a.
func (a *Attribution) Add(b Attribution) {
	for i, v := range b {
		a[i] += v
	}
}

// Sub returns the per-kind difference a - b (for differential measurement
// against an earlier snapshot).
func (a Attribution) Sub(b Attribution) Attribution {
	var out Attribution
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Map returns the non-zero entries keyed by cost-kind name (JSON-friendly:
// Go marshals map keys in sorted order, so output is deterministic).
func (a Attribution) Map() map[string]uint64 {
	out := make(map[string]uint64)
	for i, v := range a {
		if v > 0 {
			out[CostKind(i).String()] = v
		}
	}
	return out
}

// MarshalJSON renders the attribution as a name→cycles object (non-zero
// entries only). Go marshals map keys sorted, so the output is
// deterministic.
func (a Attribution) MarshalJSON() ([]byte, error) { return json.Marshal(a.Map()) }

// Attribution returns the per-kind cycle breakdown accumulated so far.
func (c *Clock) Attribution() Attribution { return Attribution(c.byKind) }

// AttributionSince returns the per-kind breakdown accumulated since an
// earlier snapshot.
func (c *Clock) AttributionSince(prev Clock) Attribution {
	var out Attribution
	for i := range c.byKind {
		out[i] = c.byKind[i] - prev.byKind[i]
	}
	return out
}

// AttributionOf converts a recorder's raw cycles-by-kind table (as returned
// by obs.Metrics.CyclesByKind) into a typed Attribution.
func AttributionOf(byKind []uint64) Attribution {
	var out Attribution
	for i := range out {
		if i < len(byKind) {
			out[i] = byKind[i]
		}
	}
	return out
}
