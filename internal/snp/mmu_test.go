package snp

import (
	"testing"
	"testing/quick"
)

// buildIdentityMap constructs a 4-level table at tableBase mapping the
// virtual range [0, pages*PageSize) to itself with the given leaf flags.
// Table pages are taken from tableBase upward. Returns the CR3 value and
// the number of table pages consumed.
func buildIdentityMap(t *testing.T, m *Machine, tableBase uint64, pages int, flags uint64) (uint64, int) {
	t.Helper()
	next := tableBase
	alloc := func() uint64 {
		p := next
		next += PageSize
		if p >= m.Config().MemBytes {
			t.Fatal("out of table pages")
		}
		return p
	}
	cr3 := alloc()
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	// Intermediate entries get full software permissions; the leaf carries
	// the requested flags (mirrors how commodity kernels build tables).
	interFlags := PTEPresent | PTEWrite | PTEUser
	for pg := 0; pg < pages; pg++ {
		virt := uint64(pg) * PageSize
		table := cr3
		for level := PTLevels - 1; level >= 1; level-- {
			idx := ptIndex(virt, level)
			pte, err := ctx.ReadPTE(table, idx)
			if err != nil {
				t.Fatalf("read PTE: %v", err)
			}
			if pte&PTEPresent == 0 {
				child := alloc()
				if err := ctx.WritePTE(table, idx, MakePTE(child, interFlags)); err != nil {
					t.Fatalf("write intermediate PTE: %v", err)
				}
				table = child
			} else {
				table = PTEAddr(pte)
			}
		}
		if err := ctx.WritePTE(table, ptIndex(virt, 0), MakePTE(virt, flags)); err != nil {
			t.Fatalf("write leaf PTE: %v", err)
		}
	}
	return cr3, int((next - tableBase) / PageSize)
}

func TestTranslateIdentityMap(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 8, PTEPresent|PTEWrite|PTEUser)
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	for _, virt := range []uint64{0, PageSize + 5, 7*PageSize + 4095} {
		phys, err := ctx.Translate(virt, AccessRead)
		if err != nil {
			t.Fatalf("Translate(%#x): %v", virt, err)
		}
		if phys != virt {
			t.Fatalf("Translate(%#x) = %#x, want identity", virt, phys)
		}
	}
}

func TestTranslateFaults(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 4, PTEPresent|PTEUser) // read-only, user
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL3, CR3: cr3}

	if _, err := ctx.Translate(100*PageSize, AccessRead); !IsPF(err) {
		t.Fatalf("unmapped: err = %v, want #PF", err)
	}
	if _, err := ctx.Translate(0, AccessWrite); !IsPF(err) {
		t.Fatalf("read-only write: err = %v, want #PF", err)
	}
	if _, err := ctx.Translate(1<<VirtBits, AccessRead); !IsPF(err) {
		t.Fatalf("non-canonical: err = %v, want #PF", err)
	}
	if m.Halted() != nil {
		t.Fatal("#PF must not halt the CVM (it is recoverable)")
	}

	sup := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	if _, err := sup.Translate(0, AccessRead); err != nil {
		t.Fatalf("supervisor read: %v", err)
	}

	// Supervisor-only mapping is invisible at CPL3.
	cr3s, _ := buildIdentityMap(t, m, 32*PageSize, 4, PTEPresent|PTEWrite) // no PTEUser
	usr := AccessContext{M: m, VMPL: VMPL0, CPL: CPL3, CR3: cr3s}
	if _, err := usr.Translate(0, AccessRead); !IsPF(err) {
		t.Fatalf("user access to supervisor page: err = %v, want #PF", err)
	}
}

func TestNXBlocksExec(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 4, PTEPresent|PTEWrite|PTEUser|PTENX)
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	if err := ctx.FetchCheck(0); !IsPF(err) {
		t.Fatalf("exec from NX page: err = %v, want #PF", err)
	}
}

func TestFetchCheckHonoursRMPSupervisorExec(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 4, PTEPresent|PTEWrite|PTEUser)
	// VeilS-KCI style: strip supervisor-exec from page 1 at VMPL3.
	if err := m.RMPAdjust(VMPL0, PageSize, VMPL3, PermRW|PermUserExec); err != nil {
		t.Fatal(err)
	}
	// Grant VMPL3 full perms on the other data/table pages so the walk works.
	for pg := uint64(0); pg < 64; pg++ {
		if pg == 1 {
			continue
		}
		if err := m.RMPAdjust(VMPL0, pg*PageSize, VMPL3, PermAll); err != nil {
			t.Fatal(err)
		}
	}
	kctx := AccessContext{M: m, VMPL: VMPL3, CPL: CPL0, CR3: cr3}
	if err := kctx.FetchCheck(0); err != nil {
		t.Fatalf("fetch from allowed page: %v", err)
	}
	if err := kctx.FetchCheck(PageSize); !IsNPF(err) {
		t.Fatalf("supervisor fetch from stripped page: err = %v, want #NPF", err)
	}
}

func TestReadWriteVirtualCrossPage(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 8, PTEPresent|PTEWrite|PTEUser)
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := ctx.Write(PageSize/2, data); err != nil {
		t.Fatalf("cross-page write: %v", err)
	}
	got := make([]byte, len(data))
	if err := ctx.Read(PageSize/2, got); err != nil {
		t.Fatalf("cross-page read: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestReadWriteU64(t *testing.T) {
	m := testMachine(t, 64, 64)
	cr3, _ := buildIdentityMap(t, m, 16*PageSize, 4, PTEPresent|PTEWrite|PTEUser)
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: cr3}
	const v = 0x1122334455667788
	if err := ctx.WriteU64(16, v); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.ReadU64(16)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("ReadU64 = %#x, want %#x", got, v)
	}
}

func TestNullCR3Faults(t *testing.T) {
	m := testMachine(t, 4, 4)
	ctx := AccessContext{M: m, VMPL: VMPL0, CPL: CPL0, CR3: 0}
	if _, err := ctx.Translate(0, AccessRead); !IsGP(err) {
		t.Fatalf("null CR3: err = %v, want #GP", err)
	}
}

// Property: MakePTE/PTEAddr round-trip for any page-aligned address within
// the architectural mask, regardless of flag bits.
func TestPTEAddrRoundTrip(t *testing.T) {
	f := func(pfn uint32, flags uint16) bool {
		phys := (uint64(pfn) << PageShift) & PTEAddrMask
		pte := MakePTE(phys, uint64(flags)&(PTEPresent|PTEWrite|PTEUser)|PTENX)
		return PTEAddr(pte) == phys
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ptIndex always yields a value < 512 and reconstructing the
// virtual page number from the four indexes is the identity.
func TestPTIndexDecomposition(t *testing.T) {
	f := func(v uint64) bool {
		virt := v & ((1 << VirtBits) - 1) &^ (PageSize - 1)
		var rebuilt uint64
		for level := 0; level < PTLevels; level++ {
			idx := ptIndex(virt, level)
			if idx >= 1<<ptIndexBits {
				return false
			}
			rebuilt |= idx << (PageShift + ptIndexBits*level)
		}
		return rebuilt == virt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a guest access at any VMPL with any CPL to a page whose RMP
// permissions exclude the corresponding bit always produces #NPF (never
// silent success).
func TestRMPDenialIsTotal(t *testing.T) {
	f := func(vmplRaw, cplRaw, accRaw uint8) bool {
		vmpl := VMPL(vmplRaw % NumVMPLs)
		if vmpl == VMPL0 {
			vmpl = VMPL1 // VMPL0 can't be restricted
		}
		cpl := CPL0
		if cplRaw%2 == 1 {
			cpl = CPL3
		}
		acc := Access(accRaw % 3)
		m := NewMachine(Config{MemBytes: 2 * PageSize, VCPUs: 1})
		if err := m.HVAssignPage(0); err != nil {
			return false
		}
		if err := m.PValidate(VMPL0, 0, true); err != nil {
			return false
		}
		// Strip everything from this VMPL.
		if err := m.RMPAdjust(VMPL0, 0, vmpl, PermNone); err != nil {
			return false
		}
		var err error
		switch acc {
		case AccessRead:
			err = m.GuestReadPhys(vmpl, cpl, 0, make([]byte, 1))
		case AccessWrite:
			err = m.GuestWritePhys(vmpl, cpl, 0, []byte{1})
		case AccessExec:
			err = m.GuestExecCheckPhys(vmpl, cpl, 0)
		}
		return IsNPF(err) && m.Halted() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMPADJUST never changes the permissions of a VMPL at or above
// the caller, for any caller/target/permission combination.
func TestRMPAdjustNeverEscalates(t *testing.T) {
	f := func(callerRaw, targetRaw, permRaw uint8) bool {
		caller := VMPL(callerRaw % NumVMPLs)
		target := VMPL(targetRaw % NumVMPLs)
		perm := Perm(permRaw) & PermAll
		m := NewMachine(Config{MemBytes: 2 * PageSize, VCPUs: 1})
		if err := m.HVAssignPage(0); err != nil {
			return false
		}
		if err := m.PValidate(VMPL0, 0, true); err != nil {
			return false
		}
		// Give every VMPL full permissions to isolate the privilege rule.
		for v := VMPL1; v < NumVMPLs; v++ {
			if err := m.RMPAdjust(VMPL0, 0, v, PermAll); err != nil {
				return false
			}
		}
		before, _ := m.RMPEntryAt(0)
		err := m.RMPAdjust(caller, 0, target, perm)
		after, _ := m.RMPEntryAt(0)
		if target <= caller {
			// Must be rejected and change nothing.
			return IsGP(err) && before == after
		}
		return err == nil && after.Perms[target] == perm && after.Perms[VMPL0] == PermAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
