package snp

import (
	"encoding/binary"
	"fmt"
)

// GHCBPayloadSize is the size of the protocol scratch area inside a GHCB.
const GHCBPayloadSize = 2048

// GHCB is the guest-hypervisor communication block: a *shared* (unencrypted)
// page through which the guest voluntarily exposes the state a hypercall
// needs (§3, Fig. 1). Because the page is shared, everything written here is
// visible to the untrusted hypervisor — protocols must never place secrets
// in it.
type GHCB struct {
	ExitCode  uint64 // reason for the exit (see the hv package codes)
	ExitInfo1 uint64
	ExitInfo2 uint64
	SwScratch uint64
	Payload   [GHCBPayloadSize]byte
}

// ghcbHeaderSize is the marshalled size of the fixed GHCB fields.
const ghcbHeaderSize = 4 * 8

// ghcbSize is the total marshalled size; it must fit one page.
const ghcbSize = ghcbHeaderSize + GHCBPayloadSize

// marshal encodes the GHCB into buf (which must be at least ghcbSize long).
func (g *GHCB) marshal(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], g.ExitCode)
	binary.LittleEndian.PutUint64(buf[8:], g.ExitInfo1)
	binary.LittleEndian.PutUint64(buf[16:], g.ExitInfo2)
	binary.LittleEndian.PutUint64(buf[24:], g.SwScratch)
	copy(buf[ghcbHeaderSize:ghcbSize], g.Payload[:])
}

// unmarshal decodes the GHCB from buf.
func (g *GHCB) unmarshal(buf []byte) {
	g.ExitCode = binary.LittleEndian.Uint64(buf[0:])
	g.ExitInfo1 = binary.LittleEndian.Uint64(buf[8:])
	g.ExitInfo2 = binary.LittleEndian.Uint64(buf[16:])
	g.SwScratch = binary.LittleEndian.Uint64(buf[24:])
	copy(g.Payload[:], buf[ghcbHeaderSize:ghcbSize])
}

// GuestWriteGHCB stores g into the shared page at phys on behalf of guest
// software at the given VMPL/CPL. The RMP check is real: if the OS maps a
// guest-private page as a "GHCB" the write still works (it owns the page),
// but the hypervisor will be unable to read it and the exit will fail — the
// behaviour §6.2 relies on ("If the operating system does not map the GHCB
// correctly, the CVM crashes on an attempted domain switch").
func (m *Machine) GuestWriteGHCB(vmpl VMPL, cpl CPL, phys uint64, g *GHCB) error {
	if PageOffset(phys) != 0 {
		return fmt.Errorf("snp: GHCB must be page aligned, got %#x", phys)
	}
	var buf [ghcbSize]byte
	g.marshal(buf[:])
	return m.GuestWritePhys(vmpl, cpl, phys, buf[:])
}

// GuestReadGHCB loads the GHCB at phys for guest software (e.g. an enclave
// reading a syscall result staged by the untrusted application).
func (m *Machine) GuestReadGHCB(vmpl VMPL, cpl CPL, phys uint64, g *GHCB) error {
	var buf [ghcbSize]byte
	if err := m.GuestReadPhys(vmpl, cpl, phys, buf[:]); err != nil {
		return err
	}
	g.unmarshal(buf[:])
	return nil
}

// HVReadGHCB is the hypervisor's view of a GHCB. It fails on guest-private
// pages, exactly like real hardware returning ciphertext.
func (m *Machine) HVReadGHCB(phys uint64, g *GHCB) error {
	var buf [ghcbSize]byte
	if err := m.HVReadPhys(phys, buf[:]); err != nil {
		return err
	}
	g.unmarshal(buf[:])
	return nil
}

// HVWriteGHCB lets the hypervisor stage a reply into a shared GHCB page.
func (m *Machine) HVWriteGHCB(phys uint64, g *GHCB) error {
	var buf [ghcbSize]byte
	g.marshal(buf[:])
	return m.HVWritePhys(phys, buf[:])
}
