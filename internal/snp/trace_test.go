package snp

import (
	"reflect"
	"testing"
)

// TestTraceSinceCoversEveryField is the drift test: Since is
// reflection-based, so any future counter added to Trace is subtracted
// automatically — this test proves it by driving every field.
func TestTraceSinceCoversEveryField(t *testing.T) {
	var cur, prev Trace
	cv := reflect.ValueOf(&cur).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	for i := 0; i < cv.NumField(); i++ {
		if cv.Field(i).Kind() != reflect.Uint64 {
			t.Fatalf("Trace field %s is %s; Since requires every field to be uint64",
				cv.Type().Field(i).Name, cv.Field(i).Kind())
		}
		cv.Field(i).SetUint(uint64(100 + 7*i))
		pv.Field(i).SetUint(uint64(10 + i))
	}
	d := cur.Since(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		want := uint64(100+7*i) - uint64(10+i)
		if got := dv.Field(i).Uint(); got != want {
			t.Errorf("Since: field %s = %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
}

func TestTraceSnapshotIndependent(t *testing.T) {
	var tr Trace
	tr.Syscalls = 5
	snap := tr.Snapshot()
	tr.Syscalls = 9
	if snap.Syscalls != 5 {
		t.Fatal("snapshot must not alias the live trace")
	}
	if d := tr.Since(snap); d.Syscalls != 4 {
		t.Fatalf("Since = %d, want 4", d.Syscalls)
	}
}

func TestCostKindString(t *testing.T) {
	if got := CostVMGEXIT.String(); got != "VMGEXIT" {
		t.Errorf("CostVMGEXIT = %q", got)
	}
	// The fallback must include the numeric value, not a fixed "?" label.
	if got := CostKind(99).String(); got != "cost(99)" {
		t.Errorf("CostKind(99).String() = %q, want %q", got, "cost(99)")
	}
	if got := CostKind(-1).String(); got != "cost(-1)" {
		t.Errorf("CostKind(-1).String() = %q, want %q", got, "cost(-1)")
	}
}

func TestCostKindNamesComplete(t *testing.T) {
	names := CostKindNames()
	if len(names) != NumCostKinds {
		t.Fatalf("CostKindNames has %d entries, want %d", len(names), NumCostKinds)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("cost kind %d has empty name", i)
		}
		if seen[n] {
			t.Errorf("cost kind name %q duplicated", n)
		}
		seen[n] = true
	}
}

func TestAttributionArithmetic(t *testing.T) {
	var a Attribution
	a[CostVMGEXIT] = 100
	a[CostSyscall] = 40
	var b Attribution
	b[CostVMGEXIT] = 30
	d := a.Sub(b)
	if d[CostVMGEXIT] != 70 || d[CostSyscall] != 40 {
		t.Fatalf("Sub = %v", d)
	}
	if d.Total() != 110 {
		t.Fatalf("Total = %d, want 110", d.Total())
	}
	d.Add(b)
	if d[CostVMGEXIT] != 100 {
		t.Fatalf("Add: got %d, want 100", d[CostVMGEXIT])
	}
	m := d.Map()
	if m["VMGEXIT"] != 100 || m["syscall"] != 40 || len(m) != 2 {
		t.Fatalf("Map = %v", m)
	}
}

func TestClockAttributionSnapshots(t *testing.T) {
	var c Clock
	c.Charge(CostVMGEXIT, 3890)
	c.Charge(CostVMENTER, 3245)
	snap := c.Snapshot()
	c.Charge(CostVMGEXIT, 3890)
	a := c.Attribution()
	if a[CostVMGEXIT] != 7780 || a.Total() != c.Cycles() {
		t.Fatalf("Attribution = %v, cycles = %d", a, c.Cycles())
	}
	d := c.AttributionSince(snap)
	if d[CostVMGEXIT] != 3890 || d[CostVMENTER] != 0 {
		t.Fatalf("AttributionSince = %v", d)
	}
}
