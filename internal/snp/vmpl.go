package snp

import "fmt"

// VMPL is a virtual machine privilege level. SEV-SNP provides four levels,
// VMPL0 through VMPL3; lower numbered levels are more privileged (like CPL).
// A VCPU instance is permanently assigned a VMPL when its VMSA is created.
type VMPL uint8

const (
	VMPL0 VMPL = iota // most privileged; Veil's monitor (Dom-MON)
	VMPL1             // protected services (Dom-SRV)
	VMPL2             // enclaves (Dom-ENC)
	VMPL3             // least privileged; the operating system (Dom-UNT)

	// NumVMPLs is the number of architectural privilege levels.
	NumVMPLs = 4
)

func (v VMPL) String() string {
	if v < NumVMPLs {
		return fmt.Sprintf("VMPL%d", uint8(v))
	}
	return fmt.Sprintf("VMPL(%d)", uint8(v))
}

// Valid reports whether v is an architecturally valid privilege level.
func (v VMPL) Valid() bool { return v < NumVMPLs }

// MorePrivilegedThan reports whether v outranks o (numerically lower).
func (v VMPL) MorePrivilegedThan(o VMPL) bool { return v < o }

// CPL is an x86 protection ring. Only ring 0 (supervisor) and ring 3 (user)
// matter for Veil's domain model.
type CPL uint8

const (
	CPL0 CPL = 0 // supervisor
	CPL3 CPL = 3 // user
)

func (c CPL) String() string { return fmt.Sprintf("CPL%d", uint8(c)) }

// Perm is a set of RMP access permissions. SEV-SNP tracks an expressive set
// per VMPL: read, write, user-execute, and supervisor-execute (§3).
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermUserExec
	PermSupervisorExec

	// PermAll grants every access kind. VMPL0 always holds PermAll on
	// assigned pages; RMPADJUST cannot revoke VMPL0 permissions.
	PermAll       = PermRead | PermWrite | PermUserExec | PermSupervisorExec
	PermNone Perm = 0
	// PermRX is read plus both execute kinds.
	PermRX = PermRead | PermUserExec | PermSupervisorExec
	// PermRW is read/write without execute.
	PermRW = PermRead | PermWrite
)

// Has reports whether p includes all permissions in q.
func (p Perm) Has(q Perm) bool { return p&q == q }

func (p Perm) String() string {
	if p == PermNone {
		return "----"
	}
	b := []byte("----")
	if p.Has(PermRead) {
		b[0] = 'r'
	}
	if p.Has(PermWrite) {
		b[1] = 'w'
	}
	if p.Has(PermUserExec) {
		b[2] = 'u'
	}
	if p.Has(PermSupervisorExec) {
		b[3] = 's'
	}
	return string(b)
}

// Access is a single memory access kind, checked against both the page
// tables (CPL view) and the RMP (VMPL view).
type Access uint8

const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// permFor maps an access at a given ring onto the RMP permission bit that
// must be present for the access to proceed.
func permFor(a Access, cpl CPL) Perm {
	switch a {
	case AccessRead:
		return PermRead
	case AccessWrite:
		return PermWrite
	case AccessExec:
		if cpl == CPL0 {
			return PermSupervisorExec
		}
		return PermUserExec
	}
	return PermNone
}
