package snp

import "fmt"

// Guest page tables use a 4-level x86-64-style format with 48-bit virtual
// addresses. Entries are 64-bit words stored in guest physical pages:
//
//	bit 0      present
//	bit 1      writable
//	bit 2      user-accessible
//	bits 12-51 physical frame address
//	bit 63     no-execute
//
// The hardware page-table walker reads table pages directly (it is not a
// software access and is not subject to RMP permission vectors); RMP
// protection of page-table pages matters for *software* reads and writes of
// the tables, which is exactly the attack §8.3 validates against.
const (
	PTEPresent  uint64 = 1 << 0
	PTEWrite    uint64 = 1 << 1
	PTEUser     uint64 = 1 << 2
	PTENX       uint64 = 1 << 63
	PTEAddrMask uint64 = 0x000F_FFFF_FFFF_F000
)

// PTLevels is the number of page-table levels.
const PTLevels = 4

// ptIndexBits is the number of virtual-address bits consumed per level.
const ptIndexBits = 9

// VirtBits is the implemented virtual address width.
const VirtBits = PTLevels*ptIndexBits + PageShift // 48

// MakePTE builds a leaf (or intermediate) entry pointing at phys.
func MakePTE(phys uint64, flags uint64) uint64 {
	return (phys & PTEAddrMask) | flags
}

// PTEAddr extracts the physical address from an entry.
func PTEAddr(pte uint64) uint64 { return pte & PTEAddrMask }

// ptIndex returns the table index for virt at the given level
// (level 3 = root, level 0 = leaf).
func ptIndex(virt uint64, level int) uint64 {
	return (virt >> (PageShift + ptIndexBits*level)) & ((1 << ptIndexBits) - 1)
}

// AccessContext is a software execution context's view of memory: a VMPL, a
// ring, and a page-table root. All simulated software uses it for loads,
// stores and fetch checks, so both the PTE checks (CPL view) and the RMP
// checks (VMPL view) are enforced on every access.
type AccessContext struct {
	M    *Machine
	VMPL VMPL
	CPL  CPL
	CR3  uint64 // physical address of the root table page
}

func (a AccessContext) String() string {
	return fmt.Sprintf("ctx(%s,%s,cr3=%#x)", a.VMPL, a.CPL, a.CR3)
}

// readPTE performs the hardware walker's read of a table entry.
func (a AccessContext) readPTE(tablePhys uint64, idx uint64) (uint64, error) {
	pi, err := a.M.pageIndex(tablePhys)
	if err != nil {
		return 0, fmt.Errorf("snp: page-table page out of range: %w", err)
	}
	page := a.M.rawPage(pi)
	off := idx * 8
	var pte uint64
	for i := 0; i < 8; i++ {
		pte |= uint64(page[off+uint64(i)]) << (8 * i)
	}
	return pte, nil
}

// Translate walks the page tables for virt and returns the physical address,
// enforcing PTE-level permissions for the context's ring. It does not
// perform the RMP check (that happens on the actual access) but it does
// produce the recoverable #PF faults the paging paths rely on.
func (a AccessContext) Translate(virt uint64, acc Access) (uint64, error) {
	if a.CR3 == 0 {
		return 0, &Fault{Kind: FaultGP, VMPL: a.VMPL, CPL: a.CPL, Virt: virt, Why: "null CR3"}
	}
	if virt>>VirtBits != 0 {
		return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Why: "non-canonical address"}
	}
	table := PageBase(a.CR3)
	// Accumulate permissions across levels like x86: an access needs the
	// relevant bit at every level.
	eff := PTEWrite | PTEUser
	effNX := false
	var pte uint64
	for level := PTLevels - 1; level >= 0; level-- {
		var err error
		pte, err = a.readPTE(table, ptIndex(virt, level))
		if err != nil {
			return 0, err
		}
		if pte&PTEPresent == 0 {
			return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Why: "not present"}
		}
		eff &= pte
		effNX = effNX || pte&PTENX != 0
		table = PTEAddr(pte)
	}
	phys := table | PageOffset(virt)
	if a.CPL == CPL3 && eff&PTEUser == 0 {
		return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "supervisor page at CPL3"}
	}
	switch acc {
	case AccessWrite:
		// Supervisor writes honour the write bit too (CR0.WP set, as
		// commodity kernels run).
		if eff&PTEWrite == 0 {
			return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "write to read-only page"}
		}
	case AccessExec:
		if effNX {
			return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "execute from NX page"}
		}
	}
	return phys, nil
}

// access performs a chunked virtual access, splitting on page boundaries.
func (a AccessContext) access(virt uint64, buf []byte, acc Access) error {
	off := 0
	for off < len(buf) {
		chunk := int(PageSize - PageOffset(virt+uint64(off)))
		if rem := len(buf) - off; chunk > rem {
			chunk = rem
		}
		phys, err := a.Translate(virt+uint64(off), acc)
		if err != nil {
			return err
		}
		var derr error
		switch acc {
		case AccessRead:
			derr = a.M.GuestReadPhys(a.VMPL, a.CPL, phys, buf[off:off+chunk])
		case AccessWrite:
			derr = a.M.GuestWritePhys(a.VMPL, a.CPL, phys, buf[off:off+chunk])
		}
		if derr != nil {
			if f, ok := AsFault(derr); ok {
				f.Virt = virt + uint64(off)
			}
			return derr
		}
		off += chunk
	}
	return nil
}

// Read copies len(buf) bytes from virtual memory into buf.
func (a AccessContext) Read(virt uint64, buf []byte) error {
	return a.access(virt, buf, AccessRead)
}

// Write copies buf into virtual memory at virt.
func (a AccessContext) Write(virt uint64, buf []byte) error {
	return a.access(virt, buf, AccessWrite)
}

// ReadU64 loads a little-endian 64-bit word.
func (a AccessContext) ReadU64(virt uint64) (uint64, error) {
	var b [8]byte
	if err := a.Read(virt, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// WriteU64 stores a little-endian 64-bit word.
func (a AccessContext) WriteU64(virt uint64, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return a.Write(virt, b[:])
}

// FetchCheck models an instruction fetch at virt: PTE execute check plus the
// RMP user/supervisor-execute check for the context's VMPL and ring.
func (a AccessContext) FetchCheck(virt uint64) error {
	phys, err := a.Translate(virt, AccessExec)
	if err != nil {
		return err
	}
	return a.M.GuestExecCheckPhys(a.VMPL, a.CPL, phys)
}

// WritePTE stores a page-table entry *as a software write*, i.e. subject to
// the full PTE+RMP checks of this context. Kernels build their tables this
// way; an OS attempting to edit a Veil-protected table page faults here
// (§8.3 attack 1).
func (a AccessContext) WritePTE(tablePhys uint64, idx uint64, pte uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(pte >> (8 * i))
	}
	return a.M.GuestWritePhys(a.VMPL, a.CPL, tablePhys+idx*8, b[:])
}

// ReadPTE loads a page-table entry as a software read under this context.
func (a AccessContext) ReadPTE(tablePhys uint64, idx uint64) (uint64, error) {
	var b [8]byte
	if err := a.M.GuestReadPhys(a.VMPL, a.CPL, tablePhys+idx*8, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
