package snp

import (
	"encoding/binary"
	"fmt"
)

// Guest page tables use a 4-level x86-64-style format with 48-bit virtual
// addresses. Entries are 64-bit words stored in guest physical pages:
//
//	bit 0      present
//	bit 1      writable
//	bit 2      user-accessible
//	bits 12-51 physical frame address
//	bit 63     no-execute
//
// The hardware page-table walker reads table pages directly (it is not a
// software access and is not subject to RMP permission vectors); RMP
// protection of page-table pages matters for *software* reads and writes of
// the tables, which is exactly the attack §8.3 validates against.
const (
	PTEPresent  uint64 = 1 << 0
	PTEWrite    uint64 = 1 << 1
	PTEUser     uint64 = 1 << 2
	PTENX       uint64 = 1 << 63
	PTEAddrMask uint64 = 0x000F_FFFF_FFFF_F000
)

// PTLevels is the number of page-table levels.
const PTLevels = 4

// ptIndexBits is the number of virtual-address bits consumed per level.
const ptIndexBits = 9

// VirtBits is the implemented virtual address width.
const VirtBits = PTLevels*ptIndexBits + PageShift // 48

// MakePTE builds a leaf (or intermediate) entry pointing at phys.
func MakePTE(phys uint64, flags uint64) uint64 {
	return (phys & PTEAddrMask) | flags
}

// PTEAddr extracts the physical address from an entry.
func PTEAddr(pte uint64) uint64 { return pte & PTEAddrMask }

// ptIndex returns the table index for virt at the given level
// (level 3 = root, level 0 = leaf).
func ptIndex(virt uint64, level int) uint64 {
	return (virt >> (PageShift + ptIndexBits*level)) & ((1 << ptIndexBits) - 1)
}

// AccessContext is a software execution context's view of memory: a VMPL, a
// ring, and a page-table root. All simulated software uses it for loads,
// stores and fetch checks, so both the PTE checks (CPL view) and the RMP
// checks (VMPL view) are enforced on every access.
type AccessContext struct {
	M    *Machine
	VMPL VMPL
	CPL  CPL
	CR3  uint64 // physical address of the root table page
}

func (a AccessContext) String() string {
	return fmt.Sprintf("ctx(%s,%s,cr3=%#x)", a.VMPL, a.CPL, a.CR3)
}

// readPTE performs the hardware walker's read of a table entry, marking the
// table page as translation-relevant so later software writes to it
// invalidate the translations that walked through it. The returned tlbDep
// versions the read for the TLB.
func (a AccessContext) readPTE(tablePhys uint64, idx uint64) (uint64, tlbDep, error) {
	pi, err := a.M.pageIndex(tablePhys)
	if err != nil {
		return 0, tlbDep{}, fmt.Errorf("snp: page-table page out of range: %w", err)
	}
	gen := a.M.notePTPage(pi)
	page := a.M.rawPage(pi)
	return binary.LittleEndian.Uint64(page[idx*8:]), tlbDep{pi: uint32(pi), gen: gen}, nil
}

// walk runs the 4-level hardware walk for virt, returning the leaf frame,
// the permissions accumulated across levels like x86 does (an access needs
// the relevant bit at every level), and the versioned table pages the walk
// read.
func (a AccessContext) walk(virt uint64, acc Access) (physPage, eff uint64, effNX bool, deps [PTLevels]tlbDep, err error) {
	table := PageBase(a.CR3)
	eff = PTEWrite | PTEUser
	for level := PTLevels - 1; level >= 0; level-- {
		var pte uint64
		pte, deps[level], err = a.readPTE(table, ptIndex(virt, level))
		if err != nil {
			return 0, 0, false, deps, err
		}
		if pte&PTEPresent == 0 {
			return 0, 0, false, deps, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Why: "not present"}
		}
		eff &= pte
		effNX = effNX || pte&PTENX != 0
		table = PTEAddr(pte)
	}
	return table, eff, effNX, deps, nil
}

// permCheck applies the accumulated PTE permissions to one access. These
// are the recoverable #PF conditions raised after a successful walk.
func (a AccessContext) permCheck(virt, phys uint64, eff uint64, effNX bool, acc Access) error {
	if a.CPL == CPL3 && eff&PTEUser == 0 {
		return &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "supervisor page at CPL3"}
	}
	switch acc {
	case AccessWrite:
		// Supervisor writes honour the write bit too (CR0.WP set, as
		// commodity kernels run).
		if eff&PTEWrite == 0 {
			return &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "write to read-only page"}
		}
	case AccessExec:
		if effNX {
			return &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Phys: phys, Why: "execute from NX page"}
		}
	}
	return nil
}

// translate resolves virt and records the recoverable fault, if any, as a
// ClassFault event: guest #PFs are handled (not halting), so this is the
// only place they become visible to the trace, the flight ring and the
// auditor.
func (a AccessContext) translate(virt uint64, acc Access) (uint64, *tlbEntry, error) {
	phys, e, err := a.translateTLB(virt, acc)
	if err != nil {
		if f, ok := AsFault(err); ok {
			a.M.ObserveFault(f)
		}
	}
	return phys, e, err
}

// translateTLB resolves virt through the software TLB, falling back to the
// hardware walk on a miss. It returns the live cache slot (nil when the
// leaf is uncacheable) so the span path can reuse and extend its RMP
// verdict mask in place. Negative walk outcomes (not-present,
// non-canonical, null CR3) are never cached; a completed walk is cached
// even when the access then takes a permission #PF, because the cached
// frame and permission bits reproduce that fault bit-identically.
func (a AccessContext) translateTLB(virt uint64, acc Access) (uint64, *tlbEntry, error) {
	if a.CR3 == 0 {
		return 0, nil, &Fault{Kind: FaultGP, VMPL: a.VMPL, CPL: a.CPL, Virt: virt, Why: "null CR3"}
	}
	if virt>>VirtBits != 0 {
		return 0, nil, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Why: "non-canonical address"}
	}
	m := a.M
	key := tlbKey{cr3: a.CR3, vpage: virt >> PageShift, vmpl: a.VMPL, cpl: a.CPL}
	e := m.tlbSlot(key)
	if m.tlbLive(e, key) {
		m.memStats.TLBHits++
		phys := e.physPage | PageOffset(virt)
		if err := a.permCheck(virt, phys, e.eff, e.effNX, acc); err != nil {
			return 0, nil, err
		}
		return phys, e, nil
	}
	m.memStats.TLBMisses++
	physPage, eff, effNX, deps, err := a.walk(virt, acc)
	if err != nil {
		return 0, nil, err
	}
	if !m.tlbFill(e, key, physPage, eff, effNX, deps) {
		e = nil
	}
	phys := physPage | PageOffset(virt)
	if err := a.permCheck(virt, phys, eff, effNX, acc); err != nil {
		return 0, nil, err
	}
	return phys, e, nil
}

// Translate walks the page tables for virt and returns the physical address,
// enforcing PTE-level permissions for the context's ring. It does not
// perform the RMP check (that happens on the actual access) but it does
// produce the recoverable #PF faults the paging paths rely on.
func (a AccessContext) Translate(virt uint64, acc Access) (uint64, error) {
	phys, _, err := a.translate(virt, acc)
	return phys, err
}

// translateUncached is the cache-free reference walker: identical rules to
// Translate, no TLB reads, writes or counters. The differential tests
// compare the two on every operation.
func (a AccessContext) translateUncached(virt uint64, acc Access) (uint64, error) {
	if a.CR3 == 0 {
		return 0, &Fault{Kind: FaultGP, VMPL: a.VMPL, CPL: a.CPL, Virt: virt, Why: "null CR3"}
	}
	if virt>>VirtBits != 0 {
		return 0, &Fault{Kind: FaultPF, VMPL: a.VMPL, CPL: a.CPL, Access: acc, Virt: virt, Why: "non-canonical address"}
	}
	physPage, eff, effNX, _, err := a.walk(virt, acc)
	if err != nil {
		return 0, err
	}
	phys := physPage | PageOffset(virt)
	if err := a.permCheck(virt, phys, eff, effNX, acc); err != nil {
		return 0, err
	}
	return phys, nil
}

// span returns the RMP-checked backing slice for the n bytes at virt, which
// must lie within one page. On a TLB hit whose RMP verdict for acc is
// already cached at the current epoch, the slice is handed out without
// re-running checkGuestAccess — every RMP mutation bumps the epoch, so the
// cached pass is still exact. Fault semantics match the copying path
// bit-for-bit, with the true faulting virtual address carried through.
func (a AccessContext) span(virt uint64, n int, acc Access) ([]byte, error) {
	buf, _, err := a.spanPhys(virt, n, acc)
	return buf, err
}

// spanPhys is span plus the resolved physical address, which the batch
// SpanCursor needs to derive the full backing page from a sub-page access.
func (a AccessContext) spanPhys(virt uint64, n int, acc Access) ([]byte, uint64, error) {
	m := a.M
	phys, e, err := a.translate(virt, acc)
	if err != nil {
		return nil, 0, err
	}
	if e != nil && e.rmpEpoch == m.tlbRMPEpoch && e.rmpOK&(1<<uint(acc)) != 0 {
		if err := m.checkRunning(); err != nil {
			return nil, 0, err
		}
		if n < 0 || PageOffset(phys)+uint64(n) > PageSize {
			return nil, 0, fmt.Errorf("snp: physical access %#x+%d crosses a page boundary", phys, n)
		}
		if acc == AccessWrite && m.isPTPage(phys>>PageShift) {
			m.invalidatePTPage(phys >> PageShift)
		}
		return m.mem[phys : phys+uint64(n)], phys, nil
	}
	buf, err := m.guestAccessPhys(a.VMPL, a.CPL, phys, n, acc, virt)
	if err != nil {
		return nil, 0, err
	}
	if e != nil {
		if e.rmpEpoch != m.tlbRMPEpoch {
			e.rmpEpoch = m.tlbRMPEpoch
			e.rmpOK = 0
		}
		e.rmpOK |= 1 << uint(acc)
	}
	return buf, phys, nil
}

// WithSpan runs fn over the backing bytes of [virt, virt+n), which must lie
// within a single page, after the full PTE+RMP checks for acc. The slice
// aliases guest memory — there is no copy in either direction — and is only
// valid during fn; callers must not retain it, because any RMP or mapping
// change can invalidate what it is allowed to alias.
func (a AccessContext) WithSpan(virt uint64, n int, acc Access, fn func([]byte) error) error {
	mem, err := a.span(virt, n, acc)
	if err != nil {
		return err
	}
	if acc == AccessWrite {
		a.M.memStats.SpanWrites++
	} else {
		a.M.memStats.SpanReads++
	}
	return fn(mem)
}

// access performs a chunked virtual access, splitting on page boundaries.
// Each chunk resolves through the TLB-backed span path, so the fault — if
// one is raised — carries the exact virtual address of the failing chunk
// from construction rather than being patched afterwards.
func (a AccessContext) access(virt uint64, buf []byte, acc Access) error {
	off := 0
	for off < len(buf) {
		chunk := int(PageSize - PageOffset(virt+uint64(off)))
		if rem := len(buf) - off; chunk > rem {
			chunk = rem
		}
		mem, err := a.span(virt+uint64(off), chunk, acc)
		if err != nil {
			return err
		}
		if acc == AccessWrite {
			copy(mem, buf[off:off+chunk])
		} else {
			copy(buf[off:off+chunk], mem)
		}
		off += chunk
	}
	return nil
}

// Read copies len(buf) bytes from virtual memory into buf.
func (a AccessContext) Read(virt uint64, buf []byte) error {
	return a.access(virt, buf, AccessRead)
}

// Write copies buf into virtual memory at virt.
func (a AccessContext) Write(virt uint64, buf []byte) error {
	return a.access(virt, buf, AccessWrite)
}

// ReadU64 loads a little-endian 64-bit word.
func (a AccessContext) ReadU64(virt uint64) (uint64, error) {
	if PageOffset(virt)+8 <= PageSize {
		mem, err := a.span(virt, 8, AccessRead)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(mem), nil
	}
	var b [8]byte
	if err := a.Read(virt, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 stores a little-endian 64-bit word.
func (a AccessContext) WriteU64(virt uint64, v uint64) error {
	if PageOffset(virt)+8 <= PageSize {
		mem, err := a.span(virt, 8, AccessWrite)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(mem, v)
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return a.Write(virt, b[:])
}

// FetchCheck models an instruction fetch at virt: PTE execute check plus the
// RMP user/supervisor-execute check for the context's VMPL and ring.
func (a AccessContext) FetchCheck(virt uint64) error {
	_, err := a.span(virt, 1, AccessExec)
	return err
}

// WritePTE stores a page-table entry *as a software write*, i.e. subject to
// the full PTE+RMP checks of this context. Kernels build their tables this
// way; an OS attempting to edit a Veil-protected table page faults here
// (§8.3 attack 1).
func (a AccessContext) WritePTE(tablePhys uint64, idx uint64, pte uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], pte)
	return a.M.GuestWritePhys(a.VMPL, a.CPL, tablePhys+idx*8, b[:])
}

// ReadPTE loads a page-table entry as a software read under this context.
func (a AccessContext) ReadPTE(tablePhys uint64, idx uint64) (uint64, error) {
	var b [8]byte
	if err := a.M.GuestReadPhys(a.VMPL, a.CPL, tablePhys+idx*8, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
