package snp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"veil/internal/obs"
)

// Post-mortem flight recording.
//
// The Flight ring (obs.Flight) runs always-on and bounded, independent of
// the big trace ring; when the CVM halts (terminal #NPF), or the invariant
// auditor reports a violation, or a layer calls TriggerPostMortem, the
// machine freezes a PostMortem: the last events, the faulting context, the
// open causal spans and an RMP diff against the post-launch baseline.
// The dump is pure data built from deterministic state, so two identical
// runs produce byte-identical JSON — which is what the golden test pins.

// PMEvent is one decoded flight-ring event: the fixed-size obs.Event with
// its class and kind resolved to strings for human consumption.
type PMEvent struct {
	TS     uint64 `json:"ts"`
	Dur    uint64 `json:"dur,omitempty"`
	Class  string `json:"class"`
	VCPU   int32  `json:"vcpu"`
	VMPL   int16  `json:"vmpl"`
	Arg1   uint64 `json:"arg1"`
	Arg2   uint64 `json:"arg2"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// PMFault is the faulting context of a post-mortem, when one exists.
type PMFault struct {
	Kind   string `json:"kind"`
	VMPL   string `json:"vmpl"`
	CPL    string `json:"cpl"`
	Access string `json:"access"`
	Virt   uint64 `json:"virt"`
	Phys   uint64 `json:"phys"`
	Why    string `json:"why"`
}

// PMRMPState is one side of an RMP diff entry, rendered compactly.
type PMRMPState struct {
	Assigned  bool     `json:"assigned"`
	Validated bool     `json:"validated"`
	VMSA      bool     `json:"vmsa"`
	Perms     []string `json:"perms"`
}

func pmRMPState(e RMPEntry) PMRMPState {
	perms := make([]string, NumVMPLs)
	for v := 0; v < NumVMPLs; v++ {
		perms[v] = e.Perms[v].String()
	}
	return PMRMPState{Assigned: e.Assigned, Validated: e.Validated, VMSA: e.VMSA, Perms: perms}
}

// PMRMPDiff is one page whose RMP entry changed since the baseline.
type PMRMPDiff struct {
	Page   uint64     `json:"page"`
	Before PMRMPState `json:"before"`
	After  PMRMPState `json:"after"`
}

// pmRMPDiffMax bounds the diff in the dump; pages beyond it are counted in
// RMPDiffTruncated.
const pmRMPDiffMax = 256

// PostMortem is the frozen flight-recorder dump.
type PostMortem struct {
	// Reason says what froze the dump ("halt: #NPF", "invariant: ...",
	// or a caller-supplied trigger).
	Reason string `json:"reason"`
	// Cycles is the virtual clock at freeze time.
	Cycles uint64 `json:"cycles"`
	// Machine is the fleet identity of the machine that froze the dump
	// (0 on single-machine runs), so multi-CVM dumps stay attributable.
	Machine int `json:"machine"`
	// Fault is the faulting context when the freeze came from a fault.
	Fault *PMFault `json:"fault,omitempty"`
	// OpenSpans is the causal span stack at freeze time, outermost first:
	// the requests that were in flight when the machine died.
	OpenSpans []uint64 `json:"open_spans,omitempty"`
	// Events is the flight ring's content at freeze time, oldest first.
	Events []PMEvent `json:"events"`
	// DroppedEvents counts events the tail can no longer show (flight-ring
	// evictions, or everything beyond the tail when a trace recorder
	// shadows the flight ring).
	DroppedEvents uint64 `json:"dropped_events"`
	// DroppedByClass breaks DroppedEvents down per event class (classes
	// with zero drops are omitted): on a busy run almost everything rolls
	// out of the bounded tail, and this says *what kind* of evidence the
	// dump is missing.
	DroppedByClass map[string]uint64 `json:"dropped_by_class,omitempty"`
	// RMPDiff lists pages whose RMP entry differs from the post-launch
	// baseline (at most pmRMPDiffMax; RMPDiffTruncated counts the rest).
	RMPDiff          []PMRMPDiff `json:"rmp_diff,omitempty"`
	RMPDiffTruncated int         `json:"rmp_diff_truncated,omitempty"`
	// VMSAPages are the live save-area pages, ascending.
	VMSAPages []uint64 `json:"vmsa_pages,omitempty"`
	// ValidatedPages is the incremental validated-page count.
	ValidatedPages uint64 `json:"validated_pages"`
}

// SnapshotRMPBaseline captures the current RMP as the baseline future
// post-mortems diff against. The CVM boot paths call it once, right after
// launch, so a dump shows what changed during the run rather than the
// whole boot sweep.
func (m *Machine) SnapshotRMPBaseline() {
	m.rmpBaseline = append([]RMPEntry(nil), m.rmp...)
}

// TriggerPostMortem freezes a post-mortem dump now, if an event-tail
// source (flight ring or recorder) is attached and no dump exists yet. The invariant auditor calls it on the
// first violation; tests and tools may call it to capture a healthy run.
func (m *Machine) TriggerPostMortem(reason string) {
	m.buildPostMortem(reason, nil)
}

// PostMortem returns the frozen dump, or nil if nothing froze one.
func (m *Machine) PostMortem() *PostMortem { return m.pm }

// buildPostMortem freezes the dump once. It needs an event-tail source —
// the dump's whole value is the event tail — so a bare machine with
// neither a flight ring nor a recorder skips silently.
func (m *Machine) buildPostMortem(reason string, f *Fault) {
	if m.pm != nil || !m.hasFlightSource() {
		return
	}
	pm := &PostMortem{
		Reason:         reason,
		Cycles:         m.clock.total,
		Machine:        m.machineID,
		OpenSpans:      m.spans.Open(),
		DroppedEvents:  m.FlightDropped(),
		VMSAPages:      m.VMSAPages(),
		ValidatedPages: m.validatedCount,
	}
	if pm.DroppedEvents > 0 {
		byClass := m.FlightDroppedByClass()
		pm.DroppedByClass = make(map[string]uint64)
		for c := obs.Class(0); c < obs.NumClasses; c++ {
			if byClass[c] > 0 {
				pm.DroppedByClass[c.String()] = byClass[c]
			}
		}
	}
	if f != nil {
		pm.Fault = &PMFault{
			Kind: f.Kind.String(), VMPL: f.VMPL.String(), CPL: f.CPL.String(),
			Access: f.Access.String(), Virt: f.Virt, Phys: f.Phys, Why: f.Why,
		}
	}
	events := m.FlightTail()
	pm.Events = make([]PMEvent, len(events))
	for i, e := range events {
		pm.Events[i] = PMEvent{
			TS: e.TS, Dur: e.Dur, Class: e.Class.String(),
			VCPU: e.VCPU, VMPL: e.VMPL, Arg1: e.Arg1, Arg2: e.Arg2,
			Span: e.Span, Parent: e.Parent,
		}
	}
	if m.rmpBaseline != nil {
		for pi := range m.rmp {
			if m.rmp[pi] == m.rmpBaseline[pi] {
				continue
			}
			if len(pm.RMPDiff) >= pmRMPDiffMax {
				pm.RMPDiffTruncated++
				continue
			}
			pm.RMPDiff = append(pm.RMPDiff, PMRMPDiff{
				Page:   uint64(pi) << PageShift,
				Before: pmRMPState(m.rmpBaseline[pi]),
				After:  pmRMPState(m.rmp[pi]),
			})
		}
	}
	m.pm = pm
}

// WriteJSON writes the dump as indented JSON. Struct-driven
// marshalling keeps the output deterministic: identical runs dump
// byte-identical post-mortems.
func (pm *PostMortem) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pm)
}

// VMSAPages returns the physical addresses of all live save-area pages in
// ascending order.
func (m *Machine) VMSAPages() []uint64 {
	if len(m.vmsas) == 0 {
		return nil
	}
	pages := make([]uint64, 0, len(m.vmsas))
	for p := range m.vmsas {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// RMPMutations returns the unconditional count of architectural RMP and
// page-state mutations. In a correct machine it equals
// MemStats().TLBRMPFlushes; the invariant auditor checks exactly that.
func (m *Machine) RMPMutations() uint64 { return m.rmpMutations }

// ValidatedCount returns the incrementally maintained number of pages with
// Validated set; the auditor's sweep recomputes it from the RMP.
func (m *Machine) ValidatedCount() uint64 { return m.validatedCount }

// AuditRMPConsistency sweeps the RMP for structural invariants of the SNP
// model (§3): a validated page must be assigned, and software can never
// revoke VMPL0's permissions on a validated non-VMSA page. It also
// recomputes the validated-page count against the incremental counter.
// At most max violation details are rendered (0 = unlimited); the returned
// count is always exact.
func (m *Machine) AuditRMPConsistency(max int) (int, []string) {
	var n int
	var details []string
	report := func(format string, args ...any) {
		n++
		if max <= 0 || len(details) < max {
			details = append(details, fmt.Sprintf(format, args...))
		}
	}
	var validated uint64
	for pi := range m.rmp {
		e := &m.rmp[pi]
		base := uint64(pi) << PageShift
		if e.Validated {
			validated++
			if !e.Assigned {
				report("page %#x validated but not assigned", base)
			}
			if e.Perms[VMPL0] != PermAll {
				report("page %#x validated with VMPL0 perms %s (must be %s)", base, e.Perms[VMPL0], PermAll)
			}
		}
		if e.VMSA && !e.Assigned {
			report("page %#x is a VMSA on an unassigned page", base)
		}
	}
	if validated != m.validatedCount {
		report("validated-page accounting drifted: RMP holds %d, counter says %d", validated, m.validatedCount)
	}
	return n, details
}

// AuditVMSAUnreadable verifies that every live save-area page refuses
// normal guest loads at every VMPL — the architectural property that keeps
// saved register state out of reach of less privileged domains (§3, §8.1).
// The probes are pure (guestAccessOK on the entry) and never halt. The
// healthy outcome is denial on every probe, so the loop runs over the live
// VMSA set without allocating; a sorted detail pass happens only once a
// violation has been found.
func (m *Machine) AuditVMSAUnreadable(max int) (int, []string) {
	var n int
	for phys := range m.vmsas {
		pi := phys >> PageShift
		if pi >= uint64(len(m.rmp)) {
			continue
		}
		e := &m.rmp[pi]
		for v := VMPL0; v < NumVMPLs; v++ {
			if e.guestAccessOK(v, CPL0, AccessRead) {
				n++
			}
		}
	}
	if n == 0 {
		return 0, nil
	}
	// Violation path: re-walk in sorted page order so the rendered details
	// (and any golden post-mortem containing them) are deterministic.
	var details []string
	for _, phys := range m.VMSAPages() {
		pi := phys >> PageShift
		if pi >= uint64(len(m.rmp)) {
			continue
		}
		e := &m.rmp[pi]
		for v := VMPL0; v < NumVMPLs; v++ {
			if e.guestAccessOK(v, CPL0, AccessRead) {
				if max <= 0 || len(details) < max {
					details = append(details, fmt.Sprintf("VMSA page %#x readable at %s", phys, v))
				}
			}
		}
	}
	return n, details
}

// AuditTLBVerdicts re-derives the RMP verdict for every live TLB entry
// whose memoized verdict mask claims validity at the current RMP epoch. A
// mismatch means a stale cached verdict survived an RMP mutation — the
// classic un-invalidated-TLB attack surface the software TLB's epoch
// scheme exists to close. The sweep reads machine state only; it never
// fills, flushes or halts.
func (m *Machine) AuditTLBVerdicts(max int) (int, []string) {
	var n int
	var details []string
	for i := range m.tlb {
		e := &m.tlb[i]
		if e.key == (tlbKey{}) || e.flushEpoch != m.tlbFlushEpoch || e.rmpEpoch != m.tlbRMPEpoch || e.rmpOK == 0 {
			continue
		}
		live := true
		for _, d := range e.deps {
			if m.ptGen[d.pi] != d.gen {
				live = false
				break
			}
		}
		if !live {
			continue
		}
		pi := e.physPage >> PageShift
		if pi >= uint64(len(m.rmp)) {
			continue
		}
		for _, acc := range []Access{AccessRead, AccessWrite, AccessExec} {
			if e.rmpOK&(1<<uint(acc)) == 0 {
				continue
			}
			if !m.rmp[pi].guestAccessOK(e.key.vmpl, e.key.cpl, acc) {
				n++
				if max <= 0 || len(details) < max {
					// Violation path only: rebuild the fault for its
					// human-readable denial reason.
					err := m.rmp[pi].checkGuestAccess(e.key.vmpl, e.key.cpl, acc)
					details = append(details, fmt.Sprintf(
						"stale TLB verdict: %s at %s/%s cached as allowed on page %#x, RMP now denies (%v)",
						acc, e.key.vmpl, e.key.cpl, e.physPage, err))
				}
			}
		}
	}
	return n, details
}
