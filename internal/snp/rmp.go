package snp

import "fmt"

// RMPEntry is one reverse-map-table entry: the hardware's record of who owns
// a physical page and what each VMPL may do with it (§3).
type RMPEntry struct {
	// Assigned marks the page as guest-private (encrypted, inaccessible
	// to the hypervisor). Unassigned pages are "shared" and usable for
	// guest-hypervisor communication (GHCB, bounce buffers).
	Assigned bool
	// Validated is the guest-side PVALIDATE state. A guest access to an
	// assigned-but-unvalidated page faults; this is how SNP prevents the
	// hypervisor from remapping pages behind the guest's back.
	Validated bool
	// VMSA marks the page as a VCPU save area. VMSA pages are not
	// accessible through normal loads/stores at any VMPL.
	VMSA bool
	// VMSATargetVMPL records, for VMSA pages, the privilege level the
	// contained VCPU instance runs at.
	VMSATargetVMPL VMPL
	// Perms holds the per-VMPL access permission vectors. On assigned
	// pages Perms[VMPL0] is always PermAll: the architecture does not
	// allow revoking VMPL0 permissions.
	Perms [NumVMPLs]Perm
}

// checkGuestAccess enforces the RMP rules for a guest access. It returns a
// *Fault (as error) on violation; the caller is responsible for halting.
func (e *RMPEntry) checkGuestAccess(vmpl VMPL, cpl CPL, a Access) error {
	if !vmpl.Valid() {
		return &Fault{Kind: FaultGP, VMPL: vmpl, CPL: cpl, Access: a, Why: "invalid VMPL"}
	}
	if e.VMSA {
		return &Fault{Kind: FaultNPF, VMPL: vmpl, CPL: cpl, Access: a, Why: "access to in-use VMSA page"}
	}
	if !e.Assigned {
		// Shared page: both sides may read and write (bounce buffers,
		// GHCB); instruction fetches from shared memory are refused.
		if a == AccessExec {
			return &Fault{Kind: FaultNPF, VMPL: vmpl, CPL: cpl, Access: a, Why: "execute from shared (unassigned) page"}
		}
		return nil
	}
	if !e.Validated {
		return &Fault{Kind: FaultNPF, VMPL: vmpl, CPL: cpl, Access: a, Why: "access to unvalidated page"}
	}
	if need := permFor(a, cpl); !e.Perms[vmpl].Has(need) {
		return &Fault{Kind: FaultNPF, VMPL: vmpl, CPL: cpl, Access: a,
			Why: fmt.Sprintf("RMP denies %s (have %s at %s)", need, e.Perms[vmpl], vmpl)}
	}
	return nil
}

// guestAccessOK reports whether checkGuestAccess would allow the access,
// without constructing the fault. The invariant auditor's sweeps probe
// RMP entries millions of times on healthy machines where denial is the
// expected outcome, and each *Fault would be a heap allocation; this twin
// keeps those loops allocation-free. TestGuestAccessOKMatchesCheck pins
// the two implementations together over the full entry state space.
func (e *RMPEntry) guestAccessOK(vmpl VMPL, cpl CPL, a Access) bool {
	if !vmpl.Valid() || e.VMSA {
		return false
	}
	if !e.Assigned {
		return a != AccessExec
	}
	if !e.Validated {
		return false
	}
	return e.Perms[vmpl].Has(permFor(a, cpl))
}

// RMPEntryAt returns a copy of the RMP entry for the page containing phys.
// (Inspection only; the architectural mutators are RMPAdjust, PValidate and
// the hypervisor assignment calls.)
func (m *Machine) RMPEntryAt(phys uint64) (RMPEntry, error) {
	pi, err := m.pageIndex(phys)
	if err != nil {
		return RMPEntry{}, err
	}
	return m.rmp[pi], nil
}

// RMPAdjust models the RMPADJUST instruction: software at callerVMPL sets
// the permission vector of targetVMPL on the page at phys.
//
// Architectural rules enforced (§3, §5.1):
//   - targetVMPL must be strictly less privileged than callerVMPL (#GP
//     otherwise); a VCPU can never raise its own or a peer's privileges.
//   - the page must be assigned and validated (#NPF otherwise).
//   - callerVMPL must itself hold read+write permission on the page; an
//     OS calling RMPADJUST on a Veil-restricted page therefore takes an
//     #NPF, which halts the CVM (§5.1 "Dom-UNT").
//   - the caller cannot grant a permission it does not itself hold.
//
// A successful call charges CyclesRMPADJUST.
func (m *Machine) RMPAdjust(callerVMPL VMPL, phys uint64, targetVMPL VMPL, perms Perm) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	if !targetVMPL.Valid() || !callerVMPL.MorePrivilegedThan(targetVMPL) {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys,
			Why: fmt.Sprintf("RMPADJUST target %s not below caller %s", targetVMPL, callerVMPL)}
		m.ObserveFault(f)
		return f
	}
	e := &m.rmp[pi]
	if e.VMSA {
		f := &Fault{Kind: FaultNPF, VMPL: callerVMPL, Phys: phys, Access: AccessWrite, Why: "RMPADJUST on in-use VMSA page"}
		m.Halt(f)
		return f
	}
	if !e.Assigned || !e.Validated {
		f := &Fault{Kind: FaultNPF, VMPL: callerVMPL, Phys: phys, Access: AccessWrite, Why: "RMPADJUST on unassigned/unvalidated page"}
		m.Halt(f)
		return f
	}
	if !e.Perms[callerVMPL].Has(PermRW) {
		f := &Fault{Kind: FaultNPF, VMPL: callerVMPL, Phys: phys, Access: AccessWrite,
			Why: fmt.Sprintf("RMPADJUST caller lacks rw on page (have %s)", e.Perms[callerVMPL])}
		m.Halt(f)
		return f
	}
	if !e.Perms[callerVMPL].Has(perms) {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys,
			Why: fmt.Sprintf("RMPADJUST grants %s beyond caller's %s", perms, e.Perms[callerVMPL])}
		m.ObserveFault(f)
		return f
	}
	e.Perms[targetVMPL] = perms
	m.rmpFlushTLB() // hardware requires TLB invalidation after RMPADJUST
	m.clock.Charge(CostRMPADJUST, CyclesRMPADJUST)
	m.observeRMPAdjust(callerVMPL, targetVMPL, phys, perms)
	return nil
}

// PValidate models the PVALIDATE instruction, which changes a page's
// validated state. It is architecturally restricted to VMPL0 — this is the
// reason the Veil kernel must delegate page-state changes to VeilMon
// (§5.3 "Page state change delegation").
func (m *Machine) PValidate(callerVMPL VMPL, phys uint64, validate bool) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	if callerVMPL != VMPL0 {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys, Why: "PVALIDATE requires VMPL0"}
		m.ObserveFault(f)
		return f
	}
	e := &m.rmp[pi]
	if !e.Assigned {
		f := &Fault{Kind: FaultNPF, VMPL: callerVMPL, Phys: phys, Why: "PVALIDATE on unassigned page"}
		m.Halt(f)
		return f
	}
	if e.Validated == validate {
		return fmt.Errorf("snp: PVALIDATE no-op (already validated=%v) at %#x", validate, PageBase(phys))
	}
	e.Validated = validate
	if validate {
		m.validatedCount++
		// A freshly validated page becomes fully accessible to VMPL0 and
		// inherits no permissions at lower levels until granted.
		e.Perms = [NumVMPLs]Perm{VMPL0: PermAll}
		// Newly accepted memory is touched (and implicitly scrubbed);
		// this cold touch dominates Veil's boot-time RMPADJUST sweep.
		clear(m.rawPage(pi))
		if m.isPTPage(pi) {
			// The scrub just rewrote PTE bytes behind the walker's back.
			m.invalidatePTPage(pi)
		}
	} else {
		m.validatedCount--
		e.Perms = [NumVMPLs]Perm{}
	}
	m.rmpFlushTLB() // validated state feeds every cached RMP verdict
	m.clock.Charge(CostPVALIDATE, CyclesPVALIDATE)
	m.observePValidate(callerVMPL, phys, validate)
	return nil
}

// HVAssignPage is the hypervisor-side RMP update that donates a page to the
// guest (private, encrypted). The guest must PVALIDATE it before use.
func (m *Machine) HVAssignPage(phys uint64) error {
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	e := &m.rmp[pi]
	if e.Assigned {
		return fmt.Errorf("snp: page %#x already assigned", PageBase(phys))
	}
	*e = RMPEntry{Assigned: true}
	m.rmpFlushTLB() // page-state change invalidates cached RMP verdicts
	return nil
}

// HVReclaimPage is the hypervisor-side RMP update that takes a page back
// from the guest (e.g. to convert it to a shared bounce buffer). Hardware
// refuses to reclaim validated pages: the guest must first rescind its
// validation (via VeilMon under Veil), closing the remap attack window.
func (m *Machine) HVReclaimPage(phys uint64) error {
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	e := &m.rmp[pi]
	if !e.Assigned {
		return fmt.Errorf("snp: page %#x not assigned", PageBase(phys))
	}
	if e.Validated {
		return fmt.Errorf("snp: cannot reclaim validated page %#x", PageBase(phys))
	}
	if e.VMSA {
		return fmt.Errorf("snp: cannot reclaim VMSA page %#x", PageBase(phys))
	}
	*e = RMPEntry{}
	m.rmpFlushTLB() // page-state change invalidates cached RMP verdicts
	return nil
}
