package snp

import "testing"

// TestReleaseRecyclesCleanBacking pins the boot pool's safety contract:
// a released machine's dirtied memory and RMP come back from the pool
// fully cleared, so a pooled boot is indistinguishable from a fresh one.
func TestReleaseRecyclesCleanBacking(t *testing.T) {
	const pages = 16
	m := NewMachine(Config{MemBytes: pages * PageSize, VCPUs: 1})
	if err := m.HVAssignPage(0); err != nil {
		t.Fatal(err)
	}
	if err := m.PValidate(VMPL0, 0, true); err != nil {
		t.Fatal(err)
	}
	for i := range m.mem {
		m.mem[i] = 0xAB
	}
	m.Release()
	if m.mem != nil || m.rmp != nil {
		t.Fatal("Release left backing attached")
	}
	m.Release() // double release is a no-op

	b := acquireBacking(pages)
	if b == nil {
		t.Skip("pool did not retain the backing (GC raced the test)")
	}
	if uint64(len(b.rmp)) != pages || uint64(len(b.mem)) != pages*PageSize {
		t.Fatalf("recycled backing has wrong shape: %d mem bytes, %d rmp entries", len(b.mem), len(b.rmp))
	}
	for i, v := range b.mem {
		if v != 0 {
			t.Fatalf("recycled memory not cleared at byte %d: %#x", i, v)
		}
	}
	zero := RMPEntry{}
	for i, e := range b.rmp {
		if e != zero {
			t.Fatalf("recycled RMP not cleared at page %d: %+v", i, e)
		}
	}
}

// TestReleaseInvalidatesCursors: a cursor into a released machine must not
// take its fast path against recycled memory.
func TestReleaseInvalidatesCursors(t *testing.T) {
	m := NewMachine(Config{MemBytes: 16 * PageSize, VCPUs: 1})
	gen := m.tlbGen
	m.Release()
	if m.tlbGen == gen {
		t.Fatal("Release did not bump tlbGen; stale SpanCursors would still validate")
	}
}
