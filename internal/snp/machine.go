package snp

import (
	"fmt"

	"veil/internal/obs"
)

// PageSize is the architectural page granule tracked by the RMP.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Config describes the guest-visible machine.
type Config struct {
	// MemBytes is the guest physical memory size. It is rounded up to a
	// whole number of pages. The paper's testbed CVM has 2 GB.
	MemBytes uint64
	// VCPUs is the number of hardware-accelerated VCPUs (the paper's CVM
	// has 4).
	VCPUs int
}

// DefaultConfig mirrors the paper's evaluation CVM (§9): 2 GB of memory and
// 4 VCPUs. Tests use smaller machines for speed.
func DefaultConfig() Config {
	return Config{MemBytes: 2 << 30, VCPUs: 4}
}

// Machine is the simulated SEV-SNP guest context: physical memory, the RMP,
// VMSAs, GHCB MSRs and the virtual cycle clock. A single Machine underlies
// one CVM plus the hypervisor's view of it.
//
// Machine is not safe for concurrent use: the simulation is synchronous and
// deterministic by design.
type Machine struct {
	cfg   Config
	mem   []byte
	rmp   []RMPEntry
	vmsas map[uint64]*VMSA // keyed by physical page address

	// ghcbMSR holds the per-VCPU GHCB physical address, written by the
	// guest via a (privileged) MSR write and read by the hypervisor.
	ghcbMSR map[int]uint64

	clock  Clock
	trace  Trace
	halted *Fault

	// Software TLB (see tlb.go): a direct-mapped cache of completed
	// page-table walks, invalidated by a full-flush epoch, an RMP-verdict
	// epoch, and per-table-page generations. ptPages is the bitset of
	// pages the walker has read PTEs from. tlbNoInvalidate is the
	// deliberately broken test-only mode proving the stale-TLB attack
	// test has teeth.
	tlb           []tlbEntry
	tlbFlushEpoch uint64
	tlbRMPEpoch   uint64
	// tlbGen is the coarse invalidation tick SpanCursor revalidates
	// against: every invalidation on any of the three precise channels
	// (flush epoch, RMP epoch, per-table-page generation) also bumps it,
	// so a cursor's cached page+verdict is live iff its snapshot matches.
	tlbGen          uint64
	tlbNoInvalidate bool
	ptPages         []uint64
	ptGen           []uint32
	memStats        MemStats

	// rec, when non-nil, receives a typed event for every architectural
	// occurrence the trace counters count (see observe.go). obsVCPU is
	// the hardware VCPU current events are attributed to, maintained by
	// the hypervisor at its entry points.
	rec     *obs.Recorder
	obsVCPU int32
	// machineID is this machine's fleet identity (0 for single-machine
	// runs). It qualifies cross-CVM trace refs and tags the post-mortem
	// dump so multi-CVM dumps stay attributable.
	machineID int

	// spans allocates causal span IDs and tracks the open-span stack; it
	// only advances while a sink (recorder, flight ring or audit hook) is
	// attached, so the no-observer fast path stays allocation-free.
	spans obs.SpanTracker
	// flight, when non-nil, is the always-on bounded ring feeding the
	// post-mortem dump; it records the same events as rec but survives
	// with tracing off.
	flight *obs.Flight
	// auditHook, when non-nil, is called after every recorded event (with
	// inAudit guarding re-entry) so an online invariant auditor can pace
	// itself by event count and domain switches.
	auditHook func(obs.Event)
	inAudit   bool

	// rmpMutations counts every architectural RMP/page-state mutation,
	// unconditionally — unlike MemStats.TLBRMPFlushes, which a broken TLB
	// mode may suppress. The invariant auditor compares the two.
	rmpMutations uint64
	// validatedCount incrementally tracks pages with Validated set; the
	// auditor's sweep checks it against a full RMP scan.
	validatedCount uint64

	// rmpBaseline is the RMP snapshot the post-mortem diffs against,
	// captured by SnapshotRMPBaseline after launch.
	rmpBaseline []RMPEntry
	// pm is the post-mortem dump, built once on the first halt or
	// explicit trigger.
	pm *PostMortem
}

// NewMachine creates a machine with all pages hypervisor-owned (shared),
// exactly as at CVM launch before the boot image is measured in. The two
// large backing arrays are drawn from the boot pool when a released
// machine of the same size is available (see pool.go); a recycled backing
// is cleared first, so the machine state is identical either way.
func NewMachine(cfg Config) *Machine {
	if cfg.MemBytes == 0 {
		cfg = DefaultConfig()
	}
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	pages := (cfg.MemBytes + PageSize - 1) / PageSize
	cfg.MemBytes = pages * PageSize
	m := &Machine{
		cfg:     cfg,
		vmsas:   make(map[uint64]*VMSA),
		ghcbMSR: make(map[int]uint64),
	}
	if b := acquireBacking(pages); b != nil {
		m.mem, m.rmp = b.mem, b.rmp
	} else {
		m.mem = make([]byte, cfg.MemBytes)
		m.rmp = make([]RMPEntry, pages)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumPages returns the number of guest physical pages.
func (m *Machine) NumPages() uint64 { return uint64(len(m.rmp)) }

// Clock exposes the virtual cycle counter.
func (m *Machine) Clock() *Clock { return &m.clock }

// Trace exposes the architectural event trace counters.
func (m *Machine) Trace() *Trace { return &m.trace }

// Halt transitions the CVM into the halted state, recording the fault. On
// real SNP hardware the class of #NPF that Veil's protections produce leads
// to a system halt with continuous faults (§5.1); the model captures that as
// a terminal state. Halt returns the fault for convenient propagation.
func (m *Machine) Halt(f *Fault) error {
	if m.halted == nil {
		m.halted = f
		m.ObserveFault(f)
		m.buildPostMortem("halt: "+f.Kind.String(), f)
	}
	return m.halted
}

// Halted returns the fault that halted the CVM, or nil if it is running.
func (m *Machine) Halted() *Fault { return m.halted }

// checkRunning returns ErrHalted if the machine has already halted.
func (m *Machine) checkRunning() error {
	if m.halted != nil {
		return ErrHalted
	}
	return nil
}

// pageIndex validates a physical address and returns its page number.
func (m *Machine) pageIndex(phys uint64) (uint64, error) {
	if phys >= m.cfg.MemBytes {
		return 0, fmt.Errorf("snp: physical address %#x outside guest memory (%d bytes)", phys, m.cfg.MemBytes)
	}
	return phys >> PageShift, nil
}

// PageBase returns the base address of the page containing phys.
func PageBase(phys uint64) uint64 { return phys &^ (PageSize - 1) }

// PageOffset returns the offset of phys within its page.
func PageOffset(phys uint64) uint64 { return phys & (PageSize - 1) }

// physRange checks that [phys, phys+n) lies within a single page and inside
// guest memory, returning the page index.
func (m *Machine) physRange(phys uint64, n int) (uint64, error) {
	pi, err := m.pageIndex(phys)
	if err != nil {
		return 0, err
	}
	if n < 0 || PageOffset(phys)+uint64(n) > PageSize {
		return 0, fmt.Errorf("snp: physical access %#x+%d crosses a page boundary", phys, n)
	}
	return pi, nil
}

// guestAccessPhys performs the RMP check for a guest access at the given
// VMPL/CPL and returns the backing slice on success. A permission violation
// raises #NPF and halts the machine.
func (m *Machine) guestAccessPhys(vmpl VMPL, cpl CPL, phys uint64, n int, a Access, virt uint64) ([]byte, error) {
	if err := m.checkRunning(); err != nil {
		return nil, err
	}
	pi, err := m.physRange(phys, n)
	if err != nil {
		return nil, err
	}
	if err := m.rmp[pi].checkGuestAccess(vmpl, cpl, a); err != nil {
		f := err.(*Fault)
		f.Virt, f.Phys = virt, phys
		m.Halt(f)
		return nil, f
	}
	if a == AccessWrite && m.isPTPage(pi) {
		// A software write is landing on a page the walker has read PTEs
		// from: translations that walked through it may now be stale.
		m.invalidatePTPage(pi)
	}
	return m.mem[phys : phys+uint64(n)], nil
}

// Span returns the RMP-checked backing slice for the physical range
// [phys, phys+n), which must lie within one page. It is the zero-copy
// counterpart of GuestReadPhys/GuestWritePhys: callers read or mutate guest
// memory in place instead of staging through an intermediate buffer. acc
// declares the intended use and is checked — and faults, and halts — exactly
// like the equivalent copying access. The slice aliases guest memory and
// must not be retained across RMP or page-state changes.
func (m *Machine) Span(vmpl VMPL, cpl CPL, phys uint64, n int, acc Access) ([]byte, error) {
	buf, err := m.guestAccessPhys(vmpl, cpl, phys, n, acc, 0)
	if err != nil {
		return nil, err
	}
	if acc == AccessWrite {
		m.memStats.SpanWrites++
	} else {
		m.memStats.SpanReads++
	}
	return buf, nil
}

// GuestReadPhys reads n bytes at a guest physical address, subject to RMP
// checks for the given VMPL/CPL. It is the primitive under AccessContext and
// is also used directly by layers that operate on physical addresses (e.g.
// VeilMon walking untrusted structures after sanitization).
func (m *Machine) GuestReadPhys(vmpl VMPL, cpl CPL, phys uint64, buf []byte) error {
	src, err := m.guestAccessPhys(vmpl, cpl, phys, len(buf), AccessRead, 0)
	if err != nil {
		return err
	}
	copy(buf, src)
	return nil
}

// GuestWritePhys writes buf at a guest physical address, subject to RMP
// checks for the given VMPL/CPL.
func (m *Machine) GuestWritePhys(vmpl VMPL, cpl CPL, phys uint64, buf []byte) error {
	dst, err := m.guestAccessPhys(vmpl, cpl, phys, len(buf), AccessWrite, 0)
	if err != nil {
		return err
	}
	copy(dst, buf)
	return nil
}

// GuestExecCheckPhys models an instruction fetch from a physical page: it
// performs the RMP execute check for the VMPL/CPL without transferring data.
func (m *Machine) GuestExecCheckPhys(vmpl VMPL, cpl CPL, phys uint64) error {
	_, err := m.guestAccessPhys(vmpl, cpl, phys, 1, AccessExec, 0)
	return err
}

// rawPage returns the backing bytes of a page without any checks. It is for
// hardware-internal paths only (page-table walker, launch measurement) and
// is deliberately unexported.
func (m *Machine) rawPage(pi uint64) []byte {
	base := pi << PageShift
	return m.mem[base : base+PageSize]
}

// HVReadPhys models a hypervisor (or device) read. SEV-SNP forbids outside
// software from reading guest-assigned pages; only shared pages succeed.
func (m *Machine) HVReadPhys(phys uint64, buf []byte) error {
	pi, err := m.physRange(phys, len(buf))
	if err != nil {
		return err
	}
	if m.rmp[pi].Assigned {
		// Reads of encrypted guest memory return ciphertext garbage on
		// real hardware; the model returns an error so tests can assert
		// the leak did not happen.
		m.ObserveDenied(DeniedHVRead, PageBase(phys))
		return fmt.Errorf("snp: hypervisor read of guest-assigned page %#x blocked", PageBase(phys))
	}
	copy(buf, m.mem[phys:phys+uint64(len(buf))])
	return nil
}

// HVWritePhys models a hypervisor write; writes to guest-assigned pages are
// blocked (integrity protection) while shared pages succeed.
func (m *Machine) HVWritePhys(phys uint64, buf []byte) error {
	pi, err := m.physRange(phys, len(buf))
	if err != nil {
		return err
	}
	if m.rmp[pi].Assigned {
		m.ObserveDenied(DeniedHVWrite, PageBase(phys))
		return fmt.Errorf("snp: hypervisor write to guest-assigned page %#x blocked", PageBase(phys))
	}
	if m.isPTPage(pi) {
		m.invalidatePTPage(pi)
	}
	copy(m.mem[phys:phys+uint64(len(buf))], buf)
	return nil
}

// WriteGHCBMSR records the GHCB physical address for a VCPU. The MSR write
// is privileged: it requires CPL0 (§6.2 discusses why enclaves cannot do
// this themselves and rely on the OS to set it before scheduling them).
func (m *Machine) WriteGHCBMSR(vcpuID int, cpl CPL, phys uint64) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	if cpl != CPL0 {
		return &Fault{Kind: FaultGP, CPL: cpl, Why: "wrmsr GHCB requires CPL0"}
	}
	if _, err := m.pageIndex(phys); err != nil {
		return err
	}
	m.ghcbMSR[vcpuID] = phys
	return nil
}

// ReadGHCBMSR returns the GHCB physical address for a VCPU (hypervisor side).
func (m *Machine) ReadGHCBMSR(vcpuID int) (uint64, bool) {
	p, ok := m.ghcbMSR[vcpuID]
	return p, ok
}
