package snp

import "fmt"

// VMSA is a virtual machine save area: the protected register state of one
// VCPU instance. Under Veil a physical VCPU has one VMSA replica per domain
// (§5.2); each replica is pinned to its VMPL for its whole lifetime.
type VMSA struct {
	VCPUID int  // which physical VCPU this instance belongs to
	VMPL   VMPL // fixed at creation
	CPL    CPL  // current ring of the saved context

	// RIP is the saved instruction pointer. Software layers in the model
	// are Go handlers, so RIP is a symbolic entry token: the hypervisor
	// and machine use it only for bookkeeping and attack tests (e.g. a
	// hypervisor attempting to corrupt a saved rip).
	RIP uint64
	RSP uint64
	CR3 uint64 // page-table root of the saved context

	GPR [16]uint64 // general-purpose registers

	// Runnable marks the instance as eligible for VMENTER.
	Runnable bool
}

// CreateVMSA models RMPADJUST with the VMSA attribute: it turns the page at
// phys into a save area containing state, runnable at state.VMPL.
//
// Only VMPL0 software may create VMSAs. This single architectural rule is
// what lets VeilMon retain exclusive control over VCPU (and hence domain)
// creation: the OS at VMPL3 cannot mint itself a privileged VCPU (§8.1,
// Table 1 "Create VCPU at Dom-MON/Dom-SRV").
func (m *Machine) CreateVMSA(callerVMPL VMPL, phys uint64, state VMSA) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	if PageOffset(phys) != 0 {
		return fmt.Errorf("snp: VMSA must be page aligned, got %#x", phys)
	}
	if callerVMPL != VMPL0 {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys, Why: "RMPADJUST(VMSA) requires VMPL0"}
		m.ObserveFault(f)
		return f
	}
	if !state.VMPL.Valid() {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys, Why: "VMSA with invalid target VMPL"}
		m.ObserveFault(f)
		return f
	}
	e := &m.rmp[pi]
	if !e.Assigned || !e.Validated {
		f := &Fault{Kind: FaultNPF, VMPL: callerVMPL, Phys: phys, Why: "VMSA page not assigned+validated"}
		m.Halt(f)
		return f
	}
	if e.VMSA {
		return fmt.Errorf("snp: page %#x already holds a VMSA", phys)
	}
	e.VMSA = true
	e.VMSATargetVMPL = state.VMPL
	v := state
	m.vmsas[phys] = &v
	m.rmpFlushTLB() // the page just became inaccessible to loads/stores
	m.clock.Charge(CostRMPADJUST, CyclesRMPADJUST)
	m.observeRMPAdjust(callerVMPL, state.VMPL, phys, PermNone)
	return nil
}

// HVCreateBootVMSA is the launch-time path: the hypervisor creates the boot
// VCPU's save area, which the architecture pins at VMPL0 (§3: "the boot
// VCPU instance ... is always created by the hypervisor at VMPL-0"). Under
// Veil this is the VMSA VeilMon itself boots on.
func (m *Machine) HVCreateBootVMSA(phys uint64, state VMSA) error {
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	if state.VMPL != VMPL0 {
		return fmt.Errorf("snp: boot VMSA is always VMPL0")
	}
	e := &m.rmp[pi]
	if e.Assigned || e.VMSA {
		return fmt.Errorf("snp: boot VMSA page %#x already in use", phys)
	}
	*e = RMPEntry{Assigned: true, Validated: true, VMSA: true, VMSATargetVMPL: VMPL0,
		Perms: [NumVMPLs]Perm{VMPL0: PermAll}}
	m.validatedCount++
	v := state
	v.Runnable = true
	m.vmsas[phys] = &v
	m.rmpFlushTLB() // the page just became inaccessible to loads/stores
	return nil
}

// VMSAAt returns the save area stored at phys, for the machine/hypervisor
// VMENTER path. The content is protected guest state: the hypervisor may
// schedule it but the model gives it no mutating access (SEV-SNP keeps
// VMSAs inside the CVM; see Table 2 "Violate saved state ... from
// hypervisor").
func (m *Machine) VMSAAt(phys uint64) (*VMSA, error) {
	v, ok := m.vmsas[phys]
	if !ok {
		return nil, fmt.Errorf("snp: no VMSA at %#x", phys)
	}
	return v, nil
}

// UpdateVMSA lets VMPL0 software (VeilMon) mutate a saved instance — e.g.
// setting the entry point and page-table root of a fresh domain replica, or
// synchronizing an enclave thread's state. Lower VMPLs take a #GP.
func (m *Machine) UpdateVMSA(callerVMPL VMPL, phys uint64, mutate func(*VMSA)) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	if callerVMPL != VMPL0 {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys, Why: "VMSA update requires VMPL0"}
		m.ObserveFault(f)
		return f
	}
	v, err := m.VMSAAt(phys)
	if err != nil {
		return err
	}
	mutate(v)
	return nil
}

// DestroyVMSA releases a save area (VMPL0 only), returning the page to
// normal guest-private use.
func (m *Machine) DestroyVMSA(callerVMPL VMPL, phys uint64) error {
	if err := m.checkRunning(); err != nil {
		return err
	}
	if callerVMPL != VMPL0 {
		f := &Fault{Kind: FaultGP, VMPL: callerVMPL, Phys: phys, Why: "VMSA destroy requires VMPL0"}
		m.ObserveFault(f)
		return f
	}
	pi, err := m.pageIndex(phys)
	if err != nil {
		return err
	}
	if _, ok := m.vmsas[phys]; !ok {
		return fmt.Errorf("snp: no VMSA at %#x", phys)
	}
	delete(m.vmsas, phys)
	e := &m.rmp[pi]
	e.VMSA = false
	e.Perms = [NumVMPLs]Perm{VMPL0: PermAll}
	m.rmpFlushTLB() // page re-entered normal use with a fresh permission vector
	return nil
}
