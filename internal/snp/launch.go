package snp

// LaunchLoad is the firmware launch path: the AMD secure processor places
// measured boot-image bytes into guest memory and marks the pages assigned
// and validated, *without* the runtime accept-scrub (the image content is
// exactly what gets measured). phys must be page aligned. Only the
// hypervisor's launch sequence uses this, before the guest runs.
func (m *Machine) LaunchLoad(phys uint64, data []byte) error {
	if PageOffset(phys) != 0 {
		return &Fault{Kind: FaultGP, Phys: phys, Why: "launch load must be page aligned"}
	}
	pages := (uint64(len(data)) + PageSize - 1) / PageSize
	for p := uint64(0); p < pages; p++ {
		pi, err := m.pageIndex(phys + p*PageSize)
		if err != nil {
			return err
		}
		e := &m.rmp[pi]
		if e.Assigned || e.VMSA {
			return &Fault{Kind: FaultGP, Phys: phys + p*PageSize, Why: "launch load over in-use page"}
		}
		*e = RMPEntry{Assigned: true, Validated: true, Perms: [NumVMPLs]Perm{VMPL0: PermAll}}
		m.validatedCount++
		lo := p * PageSize
		hi := lo + PageSize
		if hi > uint64(len(data)) {
			hi = uint64(len(data))
		}
		copy(m.rawPage(pi), data[lo:hi])
	}
	return nil
}
