package audit_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"veil/internal/audit"
	"veil/internal/core"
	"veil/internal/cvm"
	"veil/internal/sched"
	"veil/internal/snp"
)

// ringTask is one VCPU's SMP workload: batched VeilS-Log submissions on
// the interrupt completion channel — the multi-VCPU traffic the paper's
// invariants must survive (privilege-domain switches, ring drains and
// interrupt relays interleaving across VCPUs).
type ringTask struct {
	st      *core.OSStub
	batches int
	size    int
	pending []core.PendingCall
	done    int
	ops     uint64
}

func (t *ringTask) Step(vcpu int) (sched.Status, error) {
	if len(t.pending) == 0 {
		if t.done >= t.batches {
			return sched.Done, nil
		}
		for j := 0; j < t.size; j++ {
			pc, err := t.st.SubmitSrv(core.Request{
				Svc: core.SvcLOG, Op: core.OpLogAppend,
				Payload: []byte(fmt.Sprintf("audit-smp v%d b%d op%d", vcpu, t.done, j)),
			})
			if err != nil {
				return sched.Yield, err
			}
			t.pending = append(t.pending, pc)
		}
		if err := t.st.DoorbellAsync(); err != nil {
			return sched.Yield, err
		}
		return sched.Yield, nil
	}
	if _, err := t.st.WaitIntr(t.pending[len(t.pending)-1]); err != nil {
		if errors.Is(err, core.ErrWouldBlock) {
			return sched.Blocked, nil
		}
		return sched.Yield, err
	}
	for _, pc := range t.pending {
		r, ok, err := t.st.Poll(pc)
		if err != nil || !ok || r.Status != core.StatusOK {
			return sched.Yield, fmt.Errorf("seq %d: ok=%v status=%v err=%v", pc.Seq, ok, r.Status, err)
		}
		t.ops++
	}
	t.pending = t.pending[:0]
	t.done++
	return sched.Yield, nil
}

// smpWorkload boots a vcpus-wide Veil CVM with a frequent-cadence auditor
// attached and drives one ring submitter per VCPU through the scheduler.
func smpWorkload(t *testing.T, vcpus int, seed int64) (*cvm.CVM, *audit.Auditor, *sched.Scheduler, []*ringTask) {
	t.Helper()
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 24 << 20, VCPUs: vcpus, Veil: true, LogPages: 16,
		Rand: rng(seed),
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	a := audit.Attach(c.M, audit.Config{FastEvery: 16, SweepEvery: 64})
	s := sched.New(sched.Config{Machine: c.M, VCPUs: vcpus, Seed: seed, DrainLatency: 2})
	c.OnInterrupt(s.Wake)

	tasks := make([]*ringTask, vcpus)
	for i := 0; i < vcpus; i++ {
		p := c.K.Spawn(fmt.Sprintf("audit-smp-%d", i))
		v, err := c.K.PlaceProcess(p.PID)
		if err != nil {
			t.Fatalf("place: %v", err)
		}
		st := c.StubFor(v)
		st.SetDispatcher(s)
		if err := st.EnableRingIRQ(true); err != nil {
			t.Fatalf("ring irq: %v", err)
		}
		tasks[v] = &ringTask{st: st, batches: 2, size: 4}
		if err := s.Add(v, 1, tasks[v]); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	return c, a, s, tasks
}

// Across 2, 3 and 4 VCPUs of interleaved ring traffic, every invariant in
// the catalog stays silent: no violations, no post-mortem, and the checks
// actually ran (both cadences fired).
func TestInvariantsHoldUnderSMPWorkloads(t *testing.T) {
	for _, vcpus := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("vcpus=%d", vcpus), func(t *testing.T) {
			c, a, s, tasks := smpWorkload(t, vcpus, 4000+int64(vcpus))
			if _, err := s.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			a.Sweep()
			if a.Violations() != 0 {
				t.Fatalf("SMP run produced %d violations: %v", a.Violations(), a.Details())
			}
			if a.FastRuns() == 0 || a.SweepRuns() == 0 {
				t.Fatalf("auditor never paced in (fast=%d sweep=%d)", a.FastRuns(), a.SweepRuns())
			}
			if pm := c.M.PostMortem(); pm != nil {
				t.Fatalf("clean SMP run froze a post-mortem: %q", pm.Reason)
			}
			var ops uint64
			for _, tk := range tasks {
				ops += tk.ops
			}
			if want := uint64(vcpus * 2 * 4); ops != want {
				t.Fatalf("completed %d ops, want %d", ops, want)
			}
		})
	}
}

// The teeth variant: mid-workload, TLB invalidation is suppressed and a
// frame is revoked out from under a warm verdict cache. The auditor
// attached to the running SMP machine must catch it — rmp-tlb-epoch (the
// O(1) epoch divergence) and tlb-verdicts (the end-to-end stale-verdict
// re-derivation) — and freeze a post-mortem naming the first check.
func TestSMPWorkloadBrokenTLBCaught(t *testing.T) {
	c, a, s, _ := smpWorkload(t, 2, 4100)

	// Let the workload make some progress so the TLB is warm with ring and
	// page-table verdicts before the revocation.
	for i := 0; i < 12; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	c.M.SetBrokenTLBNoInvalidate(true)
	frame, err := c.K.AllocFrame()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if err := c.M.PValidate(snp.VMPL0, frame, false); err != nil {
		t.Fatalf("pvalidate: %v", err)
	}
	a.Sweep()

	if a.ViolationsBy(audit.CheckRMPTLBEpoch) == 0 {
		t.Fatalf("epoch divergence not caught under SMP load: %v", a.Details())
	}
	pm := c.M.PostMortem()
	if pm == nil {
		t.Fatal("violation under SMP load did not freeze a post-mortem")
	}
	if !strings.Contains(pm.Reason, "invariant:") {
		t.Fatalf("post-mortem reason %q does not name an invariant", pm.Reason)
	}
}
