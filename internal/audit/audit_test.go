package audit_test

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"veil/internal/audit"
	"veil/internal/cvm"
	"veil/internal/kernel"
	"veil/internal/obs"
	"veil/internal/sdk"
	"veil/internal/snp"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func rng(seed int64) io.Reader { return detRand{r: rand.New(rand.NewSource(seed))} }

func bootVeil(t *testing.T, seed int64, rec *obs.Recorder) *cvm.CVM {
	t.Helper()
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 24 << 20, VCPUs: 1, Veil: true, LogPages: 8,
		Rand: rng(seed), Recorder: rec,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return c
}

// exercise drives a representative syscall mix through the kernel.
func exercise(t *testing.T, c *cvm.CVM) {
	t.Helper()
	p := c.K.Spawn("audit-test")
	lc := &sdk.DirectLibc{K: c.K, P: p}
	for i := 0; i < 50; i++ {
		fd, err := lc.Open("/tmp/audit.txt", kernel.OCreat|kernel.ORdwr, 0o644)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := lc.Pwrite(fd, []byte("audit test payload"), 0); err != nil {
			t.Fatalf("pwrite: %v", err)
		}
		if err := lc.Close(fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		addr, err := lc.Mmap(2*snp.PageSize, kernel.ProtRead|kernel.ProtWrite)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		if err := lc.Munmap(addr); err != nil {
			t.Fatalf("munmap: %v", err)
		}
	}
}

// TestCleanRunStaysSilent: a healthy Veil CVM under a frequent-cadence
// auditor produces zero violations, no ClassInvariant events, and no
// post-mortem.
func TestCleanRunStaysSilent(t *testing.T) {
	rec := obs.NewRecorder(1 << 14)
	c := bootVeil(t, 7, rec)
	a := audit.Attach(c.M, audit.Config{FastEvery: 16, SweepEvery: 64})
	exercise(t, c)
	a.Sweep()
	if a.Violations() != 0 {
		t.Fatalf("clean run produced %d violations: %v", a.Violations(), a.Details())
	}
	if a.FastRuns() == 0 || a.SweepRuns() == 0 {
		t.Fatalf("auditor never ran (fast=%d sweeps=%d): cadence wiring broken", a.FastRuns(), a.SweepRuns())
	}
	if n := rec.Metrics().Count(obs.ClassInvariant); n != 0 {
		t.Fatalf("clean run recorded %d invariant events", n)
	}
	if pm := c.M.PostMortem(); pm != nil {
		t.Fatalf("clean run froze a post-mortem: %q", pm.Reason)
	}
}

// TestAuditorChargesNoCycles: the auditor must be invisible to the
// deterministic outputs — an audited run finishes at exactly the same
// virtual cycle as an unaudited run of the same seed and workload.
func TestAuditorChargesNoCycles(t *testing.T) {
	plain := bootVeil(t, 9, nil)
	exercise(t, plain)

	audited := bootVeil(t, 9, nil)
	a := audit.Attach(audited.M, audit.Config{FastEvery: 1, SweepEvery: 8})
	exercise(t, audited)
	a.Sweep()

	if p, q := plain.M.Clock().Cycles(), audited.M.Clock().Cycles(); p != q {
		t.Fatalf("auditor perturbed the virtual clock: %d vs %d cycles", p, q)
	}
	if a.Violations() != 0 {
		t.Fatalf("unexpected violations: %v", a.Details())
	}
}

// TestBrokenTLBInvalidationDetected gives the auditor teeth: a TLB that
// skips invalidation across an RMP mutation must trip CheckRMPTLBEpoch,
// emit a ClassInvariant event and freeze a post-mortem naming the check.
func TestBrokenTLBInvalidationDetected(t *testing.T) {
	rec := obs.NewRecorder(1 << 14)
	c := bootVeil(t, 11, rec)
	a := audit.Attach(c.M, audit.Config{FastEvery: 1})

	c.M.SetBrokenTLBNoInvalidate(true)
	defer c.M.SetBrokenTLBNoInvalidate(false)
	frame, err := c.K.AllocFrame()
	if err != nil {
		t.Fatalf("alloc frame: %v", err)
	}
	// Rescind the page's validation: an architectural RMP mutation whose
	// verdict-cache flush the broken TLB silently swallows.
	if err := c.M.PValidate(snp.VMPL0, frame, false); err != nil {
		t.Fatalf("pvalidate: %v", err)
	}
	a.Sweep()

	if a.ViolationsBy(audit.CheckRMPTLBEpoch) == 0 {
		t.Fatalf("broken TLB invalidation not detected; details=%v", a.Details())
	}
	if n := rec.Metrics().Count(obs.ClassInvariant); n == 0 {
		t.Fatal("no ClassInvariant event recorded")
	}
	pm := c.M.PostMortem()
	if pm == nil {
		t.Fatal("violation did not freeze a post-mortem")
	}
	if !strings.Contains(pm.Reason, audit.CheckRMPTLBEpoch.String()) {
		t.Fatalf("post-mortem reason %q does not name the check", pm.Reason)
	}
	if len(pm.Events) == 0 {
		t.Fatal("post-mortem carries no flight events")
	}
}

// TestCountersExport: the aux-counter source exposes the pacing and
// violation tallies under stable names.
func TestCountersExport(t *testing.T) {
	c := bootVeil(t, 13, nil)
	a := audit.Attach(c.M, audit.Config{})
	a.Sweep()
	names, values := a.Counters()
	if len(names) != len(values) {
		t.Fatalf("names/values length mismatch: %d vs %d", len(names), len(values))
	}
	want := map[string]bool{
		"audit-events": true, "audit-fast-runs": true, "audit-sweep-runs": true,
		"audit-violations": true, "audit-check-rmp-tlb-epoch": true,
		"audit-check-vmsa-unreadable": true, "audit-check-rmp-consistency": true,
		"audit-check-tlb-verdicts": true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing counters: %v (got %v)", want, names)
	}
}
