// Package audit is the online security-invariant auditor: a set of pure
// checks over simulated machine state that encode the SNP/Veil properties
// the paper's protections rest on (§3, §5, §8), run at a configurable
// cadence against the live machine.
//
// The auditor attaches to a Machine through its audit hook and paces
// itself by the event stream: cheap "fast" checks run on every domain
// switch and every FastEvery events, full-state sweeps every SweepEvery
// events. All checks read machine state only — they charge no virtual
// cycles and emit no events on success, so an audited clean run produces
// byte-identical deterministic outputs to an unaudited one. A violation
// emits a ClassInvariant event, freezes the machine's post-mortem flight
// dump, and is tallied for the exporters.
package audit

import (
	"fmt"

	"veil/internal/obs"
	"veil/internal/snp"
)

// Check indexes the invariant catalog. The values are stable: they appear
// in ClassInvariant events (Arg1) and in golden post-mortems.
type Check int

const (
	// CheckRMPTLBEpoch (fast): every architectural RMP/page-state mutation
	// must have invalidated the cached RMP verdicts — the machine's
	// unconditional mutation count and the TLB's RMP-flush count must
	// match. A divergence is exactly the un-invalidated-TLB attack surface
	// (§8.3): stale permission verdicts surviving a revocation.
	CheckRMPTLBEpoch Check = iota
	// CheckVMSAUnreadable (fast): no live save-area page may be readable
	// through normal guest loads at any VMPL (§3 — saved register state
	// stays out of reach of every software layer, §8.1 Table 1).
	CheckVMSAUnreadable
	// CheckRMPConsistency (sweep): structural RMP invariants — validated
	// pages are assigned, VMPL0 permissions on validated pages are never
	// revoked (the architecture has no instruction that could), and the
	// incremental validated-page count matches a full RMP scan (§3, §5.3).
	CheckRMPConsistency
	// CheckTLBVerdicts (sweep): every memoized RMP verdict in the software
	// TLB, when re-derived from the current RMP, must still pass. This is
	// the end-to-end form of CheckRMPTLBEpoch: not "was the TLB told to
	// invalidate" but "is anything cached that the RMP now forbids".
	CheckTLBVerdicts

	// NumChecks is the catalog size.
	NumChecks
)

var checkNames = [NumChecks]string{
	"rmp-tlb-epoch", "vmsa-unreadable", "rmp-consistency", "tlb-verdicts",
}

// String returns the check's catalog name.
func (c Check) String() string {
	if c >= 0 && c < NumChecks {
		return checkNames[c]
	}
	return "check(?)"
}

// Config tunes the auditor's cadence. Both cadences are rounded up to the
// next power of two: the pacing test runs on every machine event, and a
// mask keeps that hot path to a single AND.
type Config struct {
	// FastEvery runs the fast checks every N recorded events (default
	// 256; 0 keeps the default).
	FastEvery uint64
	// SweepEvery runs the full-state sweeps every N recorded events
	// (default 4096; 0 keeps the default).
	SweepEvery uint64
	// MaxDetails bounds the retained human-readable violation details
	// (default 32).
	MaxDetails int
}

// ceilPow2 rounds v up to the next power of two.
func ceilPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// Auditor holds the check state for one machine. Create with Attach.
type Auditor struct {
	m   *snp.Machine
	cfg Config

	fastMask  uint64 // FastEvery-1 (power of two)
	sweepMask uint64 // SweepEvery-1 (power of two)

	events    uint64 // events seen through the hook
	fastRuns  uint64
	sweepRuns uint64

	violations uint64
	perCheck   [NumChecks]uint64
	details    []string
}

// Attach installs an auditor on m via its audit hook and returns it.
// Detach by calling m.SetAuditHook(nil).
func Attach(m *snp.Machine, cfg Config) *Auditor {
	if cfg.FastEvery == 0 {
		cfg.FastEvery = 256
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = 4096
	}
	if cfg.MaxDetails == 0 {
		cfg.MaxDetails = 32
	}
	a := &Auditor{m: m, cfg: cfg}
	a.fastMask = ceilPow2(cfg.FastEvery) - 1
	a.sweepMask = ceilPow2(cfg.SweepEvery) - 1
	m.SetAuditHook(a.onEvent)
	return a
}

// onEvent is the machine's audit hook: pace the checks off the event
// stream. Domain switches are privilege-boundary crossings — exactly when
// the RMP/VMSA invariants are most at risk — so the O(1) epoch check runs
// on every one of them; the VMSA scan (O(#VMSA) guest-access probes) joins
// only at the FastEvery cadence to keep the always-on cost flat.
func (a *Auditor) onEvent(e obs.Event) {
	a.events++
	paced := a.events&a.fastMask == 0
	if e.Class == obs.ClassDomainSwitch || paced {
		a.runFast(paced)
	}
	if a.events&a.sweepMask == 0 {
		a.runSweeps()
	}
}

func (a *Auditor) runFast(full bool) {
	a.fastRuns++
	if muts, flushes := a.m.RMPMutations(), a.m.MemStats().TLBRMPFlushes; muts != flushes {
		a.report(CheckRMPTLBEpoch, 1,
			[]string{fmt.Sprintf("RMP mutations %d but only %d TLB verdict flushes", muts, flushes)})
	}
	if !full {
		return
	}
	if n, d := a.m.AuditVMSAUnreadable(a.cfg.MaxDetails); n > 0 {
		a.report(CheckVMSAUnreadable, n, d)
	}
}

func (a *Auditor) runSweeps() {
	a.sweepRuns++
	if n, d := a.m.AuditRMPConsistency(a.cfg.MaxDetails); n > 0 {
		a.report(CheckRMPConsistency, n, d)
	}
	if n, d := a.m.AuditTLBVerdicts(a.cfg.MaxDetails); n > 0 {
		a.report(CheckTLBVerdicts, n, d)
	}
}

// Sweep forces one full pass of every check (fast and sweep) right now.
// Tools call it at end of run so short workloads that never reach the
// cadence thresholds still get one complete verdict.
func (a *Auditor) Sweep() {
	a.runFast(true)
	a.runSweeps()
}

// report tallies a violating check and emits its ClassInvariant event; the
// first violation freezes the machine's post-mortem.
func (a *Auditor) report(c Check, n int, details []string) {
	first := a.violations == 0
	a.violations += uint64(n)
	a.perCheck[c] += uint64(n)
	for _, d := range details {
		if len(a.details) >= a.cfg.MaxDetails {
			break
		}
		a.details = append(a.details, c.String()+": "+d)
	}
	a.m.ObserveInvariant(uint64(c), uint64(n))
	if first {
		a.m.TriggerPostMortem("invariant: " + c.String())
	}
}

// Violations returns the total violation count across all checks.
func (a *Auditor) Violations() uint64 { return a.violations }

// ViolationsBy returns the violation count of one catalog check.
func (a *Auditor) ViolationsBy(c Check) uint64 {
	if c < 0 || c >= NumChecks {
		return 0
	}
	return a.perCheck[c]
}

// Details returns the retained human-readable violation details, in
// detection order (bounded by Config.MaxDetails).
func (a *Auditor) Details() []string { return a.details }

// FastRuns returns how many fast-check passes have run.
func (a *Auditor) FastRuns() uint64 { return a.fastRuns }

// SweepRuns returns how many sweep passes have run.
func (a *Auditor) SweepRuns() uint64 { return a.sweepRuns }

// Counters is a pull-based counter source for the obs aux registry
// (rec.AddAuxCounters(a.Counters)): check pacing and violation totals show
// up next to the TLB statistics in -metrics pages.
func (a *Auditor) Counters() (names []string, values []uint64) {
	names = []string{"audit-events", "audit-fast-runs", "audit-sweep-runs", "audit-violations"}
	values = []uint64{a.events, a.fastRuns, a.sweepRuns, a.violations}
	for c := Check(0); c < NumChecks; c++ {
		names = append(names, "audit-check-"+c.String())
		values = append(values, a.perCheck[c])
	}
	return names, values
}
