package workloads

import (
	"fmt"

	"veil/internal/cvm"
	"veil/internal/kernel"
	"veil/internal/sdk"
)

// Server workload calibration (cycles). Derivations in EXPERIMENTS.md: the
// per-request budgets reproduce the paper's observed request rates on the
// 1.9 GHz testbed under ab/memaslap drive.
const (
	lighttpdServerCyclesPerReq = 300_000
	lighttpdClientCyclesPerReq = 150_000
	nginxServerCyclesPerReq    = 800_000
	nginxClientCyclesPerReq    = 580_000
	memcachedServerCyclesPerOp = 400_000
	memcachedClientCyclesPerOp = 280_000
	wwwFileSize                = 10 << 10 // ab fetches 10 KB files (Tables 4/5)
	wwwFiles                   = 64
)

// seedWWW populates the document root.
func seedWWW(c *cvm.CVM) error {
	if err := c.K.VFS().Mkdir("/data/www", 0o755); err != nil {
		return err
	}
	for i := 0; i < wwwFiles; i++ {
		if err := writeFile(c, fmt.Sprintf("/data/www/file-%d", i), seededBytes(uint64(10+i), wwwFileSize)); err != nil {
			return err
		}
	}
	return nil
}

// httpServer builds an HTTP-like file server program driven by an embedded
// ab-style client (a separate native process; its syscalls and compute are
// part of the measured run, exactly as ApacheBench on the same host is in
// the paper's setup).
func httpServer(name, params string, requests, port int, serverCycles, clientCycles uint64, threads int) Workload {
	return Workload{
		Name:        name,
		Params:      params,
		Threads:     threads,
		RegionPages: 128,
		Setup:       seedWWW,
		Build: func(c *cvm.CVM) sdk.Program {
			client := spawnClient(c, name+"-ab")
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				lfd, err := lc.Socket(kernel.AFInet, kernel.SockStream)
				if err != nil {
					return 1
				}
				if err := lc.Bind(lfd, port); err != nil {
					return 2
				}
				if err := lc.Listen(lfd, 128); err != nil {
					return 3
				}
				reqBuf := make([]byte, 4096)
				body := make([]byte, wwwFileSize)
				respBuf := make([]byte, 16<<10)
				for i := 0; i < requests; i++ {
					// ab: open a connection and send the request.
					cfd, err := client.Socket(kernel.AFInet, kernel.SockStream)
					if err != nil {
						return 4
					}
					if err := client.Connect(cfd, port); err != nil {
						return 5
					}
					req := fmt.Sprintf("GET /file-%d HTTP/1.0\r\nHost: cvm\r\n\r\n", i%wwwFiles)
					if _, err := client.Send(cfd, []byte(req)); err != nil {
						return 6
					}
					client.Burn(clientCycles / 2)

					// Server: accept, parse, serve the file.
					afd, err := lc.Accept(lfd)
					if err != nil {
						return 7
					}
					n, err := lc.Recv(afd, reqBuf)
					if err != nil || n == 0 {
						return 8
					}
					path := parseGET(reqBuf[:n])
					fd, err := lc.Open("/data/www/"+path, kernel.ORdonly, 0)
					if err != nil {
						return 9
					}
					m, err := lc.Read(fd, body)
					if err != nil {
						return 10
					}
					lc.Close(fd)
					hdr := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", m)
					if _, err := lc.Send(afd, []byte(hdr)); err != nil {
						return 11
					}
					if _, err := lc.Send(afd, body[:m]); err != nil {
						return 12
					}
					lc.Burn(serverCycles)
					lc.Close(afd)

					// ab: drain the response and close.
					for {
						rn, rerr := client.Recv(cfd, respBuf)
						if rerr != nil || rn == 0 {
							break
						}
					}
					client.Burn(clientCycles / 2)
					if err := client.Close(cfd); err != nil {
						return 13
					}
				}
				lc.Close(lfd)
				return 0
			})
		},
	}
}

// parseGET extracts the path from "GET /<path> HTTP/1.0".
func parseGET(req []byte) string {
	s := string(req)
	start := 5 // after "GET /"
	if len(s) < start {
		return ""
	}
	end := start
	for end < len(s) && s[end] != ' ' && s[end] != '\r' {
		end++
	}
	return s[start:end]
}

// Lighttpd is Table 4's webserver row: 1 worker, ab with 10k × 10 KB files
// (request count scaled for simulation time; rates are per second).
func Lighttpd(requests int) Workload {
	return httpServer("lighttpd",
		"Ran locally with 1 worker thread; ApacheBench 10,000 (10KB) files (scaled run)",
		requests, 8080, lighttpdServerCyclesPerReq, lighttpdClientCyclesPerReq, 1)
}

// NGINX is Table 5's webserver row: 2 workers, same ab drive.
func NGINX(requests int) Workload {
	return httpServer("nginx",
		"Ran locally with 2 worker threads; ApacheBench 10,000 (10KB) files (scaled run)",
		requests, 8081, nginxServerCyclesPerReq, nginxClientCyclesPerReq, 2)
}

// Memcached is Table 5's cache row: a slab cache server under a
// memaslap-style 90:10 GET:SET drive at concurrency 16, 4 workers.
func Memcached(ops int) Workload {
	return Workload{
		Name:    "memcached",
		Params:  "4 worker threads; memaslap 90:10 GET:SET, 60 s, concurrency 16 (scaled run)",
		Threads: 4,
		Setup:   func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			client := spawnClient(c, "memaslap")
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				lfd, err := lc.Socket(kernel.AFInet, kernel.SockStream)
				if err != nil {
					return 1
				}
				if err := lc.Bind(lfd, 11211); err != nil {
					return 2
				}
				if err := lc.Listen(lfd, 128); err != nil {
					return 3
				}
				// One long-lived connection, like memaslap's persistent
				// connections.
				cfd, err := client.Socket(kernel.AFInet, kernel.SockStream)
				if err != nil {
					return 4
				}
				if err := client.Connect(cfd, 11211); err != nil {
					return 5
				}
				afd, err := lc.Accept(lfd)
				if err != nil {
					return 6
				}

				cache := make(map[string][]byte)
				val := seededBytes(20, 100)
				buf := make([]byte, 512)
				rbuf := make([]byte, 512)
				for i := 0; i < ops; i++ {
					key := fmt.Sprintf("key-%d", i%512)
					var cmd string
					if i%10 == 0 { // 10% SETs
						cmd = fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
					} else {
						cmd = fmt.Sprintf("get %s\r\n", key)
					}
					if _, err := client.Send(cfd, []byte(cmd)); err != nil {
						return 7
					}
					client.Burn(memcachedClientCyclesPerOp)

					n, err := lc.Recv(afd, buf)
					if err != nil || n == 0 {
						return 8
					}
					lc.Burn(memcachedServerCyclesPerOp)
					var resp string
					if buf[0] == 's' { // set
						cache[key] = append([]byte{}, val...)
						resp = "STORED\r\n"
					} else if v, ok := cache[key]; ok {
						resp = fmt.Sprintf("VALUE %s 0 %d\r\n%s\r\nEND\r\n", key, len(v), v)
					} else {
						resp = "END\r\n"
					}
					if _, err := lc.Send(afd, []byte(resp)); err != nil {
						return 9
					}
					if _, err := client.Recv(cfd, rbuf); err != nil {
						return 10
					}
				}
				lc.Close(afd)
				lc.Close(lfd)
				client.Close(cfd)
				return 0
			})
		},
	}
}
