// Package workloads reimplements the paper's evaluation programs (Tables
// 3–5) against the SDK's Libc interface, so each runs unchanged natively,
// under kaudit/VeilS-Log auditing, or inside a VeilS-Enc enclave.
//
// Every workload pairs a Program with the load parameters the paper used
// and a compute budget (Libc.Burn) calibrated from the real program's
// throughput on the paper's 1.9 GHz testbed; DESIGN.md and EXPERIMENTS.md
// document each derivation. Syscall *patterns* are real: files, sockets and
// buffers all move through the simulated kernel.
package workloads

import (
	"fmt"

	"veil/internal/cvm"
	"veil/internal/kernel"
	"veil/internal/sdk"
)

// Workload is one evaluation program plus its drive parameters.
type Workload struct {
	// Name as the paper's figures label it.
	Name string
	// Params echoes the Table 3/4/5 settings row.
	Params string
	// Threads is the worker parallelism of the paper's setup; wall-clock
	// rates divide the cycle count by Threads × clock.
	Threads int
	// RegionPages sizes the enclave when the workload runs shielded.
	RegionPages uint64
	// Setup seeds the filesystem and spawns any native helper processes.
	Setup func(c *cvm.CVM) error
	// Build returns the program. It may capture native driver helpers
	// (load generators like ab/memaslap run as native processes).
	Build func(c *cvm.CVM) sdk.Program
	// Args are passed to Program.Main.
	Args []string
}

// seededBytes produces deterministic pseudo-random content (the stand-in
// for /dev/urandom in Table 4's GZip row).
func seededBytes(seed uint64, n int) []byte {
	out := make([]byte, n)
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// writeFile seeds a VFS file directly (setup-time, not measured).
func writeFile(c *cvm.CVM, path string, data []byte) error {
	ino, err := c.K.VFS().Create(path, 0o644, false)
	if err != nil {
		return err
	}
	ino.Data = append(ino.Data[:0], data...)
	return nil
}

// spawnClient creates a native client process with a DirectLibc handle.
func spawnClient(c *cvm.CVM, name string) *sdk.DirectLibc {
	p := c.K.Spawn(name)
	return &sdk.DirectLibc{K: c.K, P: p}
}

// All returns the full workload registry keyed by name.
func All() map[string]Workload {
	ws := []Workload{
		GZip(10 << 20),
		SQLite(10000),
		UnQLite(20000),
		MbedTLS(2800),
		Lighttpd(2000),
		Memcached(4000),
		OpenSSLSpeed(1500),
		SevenZip(1500),
		NGINX(2000),
		SPECLike(),
	}
	out := make(map[string]Workload, len(ws))
	for _, w := range ws {
		out[w.Name] = w
	}
	return out
}

// Get fetches a workload by name.
func Get(name string) (Workload, error) {
	w, ok := All()[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// openFlags is shorthand used by several programs.
const (
	rdwrCreate = kernel.OCreat | kernel.ORdwr
	wrCreate   = kernel.OCreat | kernel.OWronly | kernel.OTrunc
)
