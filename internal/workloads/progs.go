package workloads

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"veil/internal/cvm"
	"veil/internal/kernel"
	"veil/internal/sdk"
)

// Compute-rate constants (cycles), calibrated in DESIGN.md §5 /
// EXPERIMENTS.md against the paper's measured rates and overheads.
const (
	// gzipCyclesPerByte: DEFLATE over incompressible input ≈ 38 c/B
	// (≈50 MB/s at 1.9 GHz).
	gzipCyclesPerByte = 38
	// sqliteCyclesPerInsert: one autocommit INSERT incl. B-tree descent
	// and journal bookkeeping.
	sqliteCyclesPerInsert = 52_000
	// unqliteCyclesPerInsert: hash-store append path (no journal).
	unqliteCyclesPerInsert = 45_000
	// mbedtlsCyclesPerTest: one self-test vector (AES/SHA/RSA mix).
	mbedtlsCyclesPerTest = 100_000
	// opensslCyclesPerBatch: one pts/openssl speed batch between result
	// lines.
	opensslCyclesPerBatch = 1_250_000
	// sevenZipCyclesPerChunk: LZMA-class compression of one 64 KiB chunk.
	sevenZipCyclesPerChunk = 3_000_000
	// sqliteSpeedtestCyclesPerOp: one pts/sqlite-speedtest operation.
	sqliteSpeedtestCyclesPerOp = 1_600_000
	// gzipChunk is the program's I/O granularity.
	gzipChunk = 48 << 10
)

// GZip compresses a 10 MB pseudo-random file (Table 4): the paper's lowest
// enclave-exit-rate workload.
func GZip(size int) Workload {
	return Workload{
		Name:        "gzip",
		Params:      "Compressed a 10MB file generated using /dev/urandom",
		Threads:     1,
		RegionPages: 96,
		Setup: func(c *cvm.CVM) error {
			return writeFile(c, "/data/input.bin", seededBytes(1, size))
		},
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				in, err := lc.Open("/data/input.bin", kernel.ORdonly, 0)
				if err != nil {
					return 1
				}
				out, err := lc.Open("/data/output.gz", wrCreate, 0o644)
				if err != nil {
					return 2
				}
				var compressed bytes.Buffer
				fw, _ := flate.NewWriter(&compressed, flate.BestSpeed)
				buf := make([]byte, gzipChunk)
				for {
					n, err := lc.Read(in, buf)
					if err != nil || n == 0 {
						break
					}
					fw.Write(buf[:n])
					lc.Burn(uint64(n) * gzipCyclesPerByte)
					if compressed.Len() >= gzipChunk {
						lc.Write(out, compressed.Next(gzipChunk))
					}
				}
				fw.Close()
				lc.Write(out, compressed.Bytes())
				lc.Close(in)
				lc.Close(out)
				return 0
			})
		},
	}
}

// minidb is a small paged table engine: the storage behaviour under
// SQLite's autocommit INSERT loop (journal write, page write, metadata
// update per transaction).
type minidb struct {
	lc       sdk.Libc
	db, wal  int
	pageBuf  []byte
	nextSlot int64
}

func openMinidb(lc sdk.Libc, path string) (*minidb, error) {
	db, err := lc.Open(path, rdwrCreate, 0o644)
	if err != nil {
		return nil, err
	}
	wal, err := lc.Open(path+"-journal", rdwrCreate, 0o644)
	if err != nil {
		return nil, err
	}
	return &minidb{lc: lc, db: db, wal: wal, pageBuf: make([]byte, 128)}, nil
}

func (d *minidb) insert(key, val []byte, burn uint64) error {
	d.lc.Burn(burn)
	// Journal record first (crash safety), then the table page, then the
	// header slot count: three syscalls per autocommit transaction.
	rec := append(append([]byte{}, key...), val...)
	if _, err := d.lc.Write(d.wal, rec); err != nil {
		return err
	}
	copy(d.pageBuf, rec)
	if _, err := d.lc.Pwrite(d.db, d.pageBuf, 64+d.nextSlot*128); err != nil {
		return err
	}
	hdr := []byte{byte(d.nextSlot), byte(d.nextSlot >> 8), byte(d.nextSlot >> 16), byte(d.nextSlot >> 24)}
	if _, err := d.lc.Pwrite(d.db, hdr, 0); err != nil {
		return err
	}
	d.nextSlot++
	return nil
}

func (d *minidb) close() {
	d.lc.Close(d.db)
	d.lc.Close(d.wal)
}

// SQLite inserts 10k random entries into a test database (Table 4): the
// paper's highest enclave-exit-rate workload.
func SQLite(inserts int) Workload {
	return Workload{
		Name:        "sqlite",
		Params:      "Inserted 10k random entries into a test database",
		Threads:     1,
		RegionPages: 96,
		Setup:       func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				db, err := openMinidb(lc, "/data/test.db")
				if err != nil {
					return 1
				}
				defer db.close()
				key := make([]byte, 16)
				val := seededBytes(2, 64)
				for i := 0; i < inserts; i++ {
					for b := 0; b < 8; b++ {
						key[b] = byte(i >> (8 * b))
					}
					if err := db.insert(key, val, sqliteCyclesPerInsert); err != nil {
						return 2
					}
				}
				return 0
			})
		},
	}
}

// UnQLite runs the provided huge-db test shape (Table 4): a hash-store
// append path without per-transaction journaling. The insert count scales
// the paper's 1M-entry run down for simulation time; rates are per-second
// and unaffected by the scale.
func UnQLite(inserts int) Workload {
	return Workload{
		Name:        "unqlite",
		Params:      "Ran provided huge-db test (1M random entries; scaled run)",
		Threads:     1,
		RegionPages: 96,
		Setup:       func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				log, err := lc.Open("/data/unqlite.db", rdwrCreate, 0o644)
				if err != nil {
					return 1
				}
				rec := seededBytes(3, 96)
				for i := 0; i < inserts; i++ {
					lc.Burn(unqliteCyclesPerInsert)
					if _, err := lc.Write(log, rec); err != nil {
						return 2
					}
					if i%2 == 1 {
						// Bucket directory update every other insert.
						if _, err := lc.Pwrite(log, rec[:16], int64(i)); err != nil {
							return 3
						}
					}
				}
				lc.Close(log)
				return 0
			})
		},
	}
}

// MbedTLS runs the library self-test (Table 4): 2.8k vectors over AES,
// SHA, RSA, ChaCha, with one result line per test.
func MbedTLS(tests int) Workload {
	return Workload{
		Name:        "mbedtls",
		Params:      "Self-test benchmark: 2.8k tests for AES, SHA, RSA, ChaCha etc.",
		Threads:     1,
		RegionPages: 64,
		Setup:       func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				key := seededBytes(4, 32)
				block, err := aes.NewCipher(key)
				if err != nil {
					return 1
				}
				gcm, _ := cipher.NewGCM(block)
				msg := seededBytes(5, 256)
				nonce := make([]byte, gcm.NonceSize())
				for i := 0; i < tests; i++ {
					// Real crypto keeps the program honest; Burn models
					// the full vector cost (RSA etc.).
					ct := gcm.Seal(nil, nonce, msg, nil)
					sum := sha256.Sum256(ct)
					msg[0] = sum[0]
					lc.Burn(mbedtlsCyclesPerTest)
					if err := lc.Print(fmt.Sprintf("test %d: PASSED\n", i)); err != nil {
						return 2
					}
				}
				return 0
			})
		},
	}
}

// OpenSSLSpeed models pts/openssl (Table 5): long crypto batches with a
// result line per batch — a low audit-rate workload.
func OpenSSLSpeed(batches int) Workload {
	return Workload{
		Name:    "openssl",
		Params:  "Phoronix benchmark: pts/openssl",
		Threads: 1,
		Setup:   func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				sum := sha256.Sum256([]byte("openssl"))
				for i := 0; i < batches; i++ {
					for j := 0; j < 16; j++ {
						sum = sha256.Sum256(sum[:])
					}
					lc.Burn(opensslCyclesPerBatch)
					if err := lc.Print(fmt.Sprintf("sign/s batch %d %x\n", i, sum[0])); err != nil {
						return 1
					}
				}
				return 0
			})
		},
	}
}

// SevenZip models pts/compress-7zip (Table 5): chunked compression with a
// read and a write per chunk.
func SevenZip(chunks int) Workload {
	return Workload{
		Name:    "7zip",
		Params:  "Phoronix benchmark: pts/compress-7zip",
		Threads: 1,
		Setup: func(c *cvm.CVM) error {
			return writeFile(c, "/data/7z-input.bin", seededBytes(6, 64<<10))
		},
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				out, err := lc.Open("/data/7z-out.bin", wrCreate, 0o644)
				if err != nil {
					return 1
				}
				buf := make([]byte, 16<<10)
				var compressed bytes.Buffer
				for i := 0; i < chunks; i++ {
					in, err := lc.Open("/data/7z-input.bin", kernel.ORdonly, 0)
					if err != nil {
						return 2
					}
					n, _ := lc.Read(in, buf)
					lc.Close(in)
					compressed.Reset()
					fw, _ := flate.NewWriter(&compressed, flate.BestCompression)
					fw.Write(buf[:n])
					fw.Close()
					lc.Burn(sevenZipCyclesPerChunk)
					if _, err := lc.Write(out, compressed.Bytes()[:min(1024, compressed.Len())]); err != nil {
						return 3
					}
				}
				lc.Close(out)
				return 0
			})
		},
	}
}

// SQLiteSpeedtest models pts/sqlite-speedtest (Table 5): heavier operations
// than the Table 4 insert loop, two audited syscalls per op.
func SQLiteSpeedtest(ops int) Workload {
	return Workload{
		Name:    "sqlite-speedtest",
		Params:  "Phoronix benchmark: pts/sqlite-speedtest",
		Threads: 1,
		Setup:   func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				db, err := lc.Open("/data/speedtest.db", rdwrCreate, 0o644)
				if err != nil {
					return 1
				}
				page := seededBytes(7, 512)
				for i := 0; i < ops; i++ {
					lc.Burn(sqliteSpeedtestCyclesPerOp)
					if _, err := lc.Write(db, page[:64]); err != nil {
						return 2
					}
					if _, err := lc.Pwrite(db, page, int64(i*512)); err != nil {
						return 3
					}
				}
				lc.Close(db)
				return 0
			})
		},
	}
}

// SPECLike is the §9.1 background workload: CPU-bound computation with a
// negligible syscall footprint, for the "no discernible slowdown under
// normal execution" measurement.
func SPECLike() Workload {
	return Workload{
		Name:    "spec-like",
		Params:  "SPEC CPU 2006-like compute kernel",
		Threads: 1,
		Setup:   func(*cvm.CVM) error { return nil },
		Build: func(c *cvm.CVM) sdk.Program {
			return sdk.ProgramFunc(func(lc sdk.Libc, args []string) int {
				acc := uint64(12345)
				for i := 0; i < 2000; i++ {
					for j := 0; j < 64; j++ {
						acc = acc*6364136223846793005 + 1442695040888963407
					}
					lc.Burn(1_000_000)
				}
				if acc == 0 {
					return 1
				}
				lc.Print("spec done\n")
				return 0
			})
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
