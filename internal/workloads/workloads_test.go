package workloads_test

import (
	"math/rand"
	"testing"

	"veil/internal/cvm"
	"veil/internal/sdk"
	"veil/internal/workloads"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func bootNative(t *testing.T) *cvm.CVM {
	t.Helper()
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 48 << 20, VCPUs: 1, Veil: false,
		Rand: detRand{r: rand.New(rand.NewSource(71))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runNative executes a workload natively and returns the syscall count.
func runNative(t *testing.T, c *cvm.CVM, w workloads.Workload) uint64 {
	t.Helper()
	if err := w.Setup(c); err != nil {
		t.Fatalf("%s setup: %v", w.Name, err)
	}
	prog := w.Build(c)
	p := c.K.Spawn(w.Name)
	before := c.M.Trace().Syscalls
	rc := prog.Main(&sdk.DirectLibc{K: c.K, P: p}, w.Args)
	if rc != 0 {
		t.Fatalf("%s exited %d", w.Name, rc)
	}
	return c.M.Trace().Syscalls - before
}

func TestGZipProducesCompressedOutput(t *testing.T) {
	c := bootNative(t)
	w := workloads.GZip(1 << 20)
	syscalls := runNative(t, c, w)
	out, err := c.K.VFS().Lookup("/data/output.gz")
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() == 0 {
		t.Fatal("no compressed output")
	}
	// Pseudo-random input barely compresses: output close to input size.
	if out.Size() < (1<<20)*9/10 {
		t.Fatalf("suspiciously small output: %d bytes", out.Size())
	}
	if syscalls < 40 {
		t.Fatalf("gzip made only %d syscalls", syscalls)
	}
}

func TestSQLiteWritesDatabaseAndJournal(t *testing.T) {
	c := bootNative(t)
	w := workloads.SQLite(500)
	syscalls := runNative(t, c, w)
	db, err := c.K.VFS().Lookup("/data/test.db")
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() < 500*128 {
		t.Fatalf("db too small: %d", db.Size())
	}
	if _, err := c.K.VFS().Lookup("/data/test.db-journal"); err != nil {
		t.Fatal("no journal file")
	}
	// 3 writes per insert plus opens/closes.
	if syscalls < 1500 {
		t.Fatalf("sqlite made only %d syscalls for 500 inserts", syscalls)
	}
}

func TestUnQLiteAppendsRecords(t *testing.T) {
	c := bootNative(t)
	w := workloads.UnQLite(400)
	runNative(t, c, w)
	db, err := c.K.VFS().Lookup("/data/unqlite.db")
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() < 400*96 {
		t.Fatalf("store too small: %d", db.Size())
	}
}

func TestMbedTLSPrintsResults(t *testing.T) {
	c := bootNative(t)
	w := workloads.MbedTLS(50)
	runNative(t, c, w)
	console, err := c.K.VFS().Lookup("/dev/console")
	if err != nil {
		t.Fatal(err)
	}
	if console.Size() == 0 {
		t.Fatal("no self-test output")
	}
}

func TestLighttpdServesFilesOverSockets(t *testing.T) {
	c := bootNative(t)
	w := workloads.Lighttpd(25)
	syscalls := runNative(t, c, w)
	// Each request is ≥10 syscalls across server and client.
	if syscalls < 250 {
		t.Fatalf("lighttpd made only %d syscalls for 25 requests", syscalls)
	}
}

func TestMemcachedServesGetsAndSets(t *testing.T) {
	c := bootNative(t)
	w := workloads.Memcached(100)
	syscalls := runNative(t, c, w)
	if syscalls < 400 {
		t.Fatalf("memcached made only %d syscalls for 100 ops", syscalls)
	}
}

func TestNginxAndOpenSSLAnd7Zip(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.NGINX(10),
		workloads.OpenSSLSpeed(10),
		workloads.SevenZip(5),
		workloads.SQLiteSpeedtest(10),
		workloads.SPECLike(),
	} {
		c := bootNative(t)
		runNative(t, c, w)
	}
}

func TestRegistryComplete(t *testing.T) {
	all := workloads.All()
	for _, name := range []string{
		"gzip", "sqlite", "unqlite", "mbedtls", "lighttpd",
		"memcached", "openssl", "7zip", "nginx", "spec-like",
	} {
		w, ok := all[name]
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		if w.Params == "" || w.Build == nil || w.Setup == nil {
			t.Fatalf("workload %q incomplete", name)
		}
	}
	if _, err := workloads.Get("nope"); err == nil {
		t.Fatal("unknown workload lookup succeeded")
	}
}

func TestGZipRunsInEnclaveToo(t *testing.T) {
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 48 << 20, VCPUs: 1, Veil: true, LogPages: 8,
		Rand: detRand{r: rand.New(rand.NewSource(72))},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.GZip(256 << 10)
	if err := w.Setup(c); err != nil {
		t.Fatal(err)
	}
	prog := w.Build(c)
	host := c.K.Spawn("gzip-host")
	app, err := sdk.LaunchEnclave(c, host, prog, sdk.EnclaveConfig{RegionPages: w.RegionPages})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := app.Enter()
	if err != nil || rc != 0 {
		t.Fatalf("enclave gzip: rc=%d err=%v", rc, err)
	}
	out, err := c.K.VFS().Lookup("/data/output.gz")
	if err != nil || out.Size() == 0 {
		t.Fatalf("no output: %v", err)
	}
	if app.Enclave().Exits() < 8 {
		t.Fatalf("too few exits: %d", app.Enclave().Exits())
	}
}

func TestLighttpdRunsInEnclaveToo(t *testing.T) {
	c, err := cvm.Boot(cvm.Options{
		MemBytes: 48 << 20, VCPUs: 1, Veil: true, LogPages: 8,
		Rand: detRand{r: rand.New(rand.NewSource(73))},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.Lighttpd(10)
	if err := w.Setup(c); err != nil {
		t.Fatal(err)
	}
	prog := w.Build(c)
	host := c.K.Spawn("httpd-host")
	app, err := sdk.LaunchEnclave(c, host, prog, sdk.EnclaveConfig{RegionPages: w.RegionPages})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := app.Enter()
	if err != nil || rc != 0 {
		t.Fatalf("enclave lighttpd: rc=%d err=%v", rc, err)
	}
}
