// Package vmod defines the signed loadable kernel module format used by
// VeilS-Kci (§6.1). A module image carries text, initialized data, a BSS
// size, relocations against kernel symbols, and an ed25519 signature over
// the whole body. The loader (in-kernel natively; VeilS-Kci under Veil)
// verifies the signature, copies the sections into kernel frames, patches
// relocations using a *protected* symbol table, and write-protects the
// installed text.
package vmod

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a VMOD image.
var Magic = []byte("VMOD1\x00")

// Reloc patches the 8 bytes at text[Offset:] with the address of a kernel
// symbol.
type Reloc struct {
	Offset uint32
	Symbol string
}

// Module is a parsed module image.
type Module struct {
	Name   string
	Text   []byte
	Data   []byte
	BSS    uint32 // zero-initialized bytes appended after data when installed
	Relocs []Reloc
}

// Common errors.
var (
	ErrFormat    = errors.New("vmod: malformed image")
	ErrSignature = errors.New("vmod: bad signature")
	ErrSymbol    = errors.New("vmod: unresolved symbol")
)

func putBytes(w *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	w.Write(n[:])
	w.Write(b)
}

// encodeBody serializes everything except the signature.
func (m *Module) encodeBody() []byte {
	var w bytes.Buffer
	w.Write(Magic)
	putBytes(&w, []byte(m.Name))
	putBytes(&w, m.Text)
	putBytes(&w, m.Data)
	var bss [4]byte
	binary.LittleEndian.PutUint32(bss[:], m.BSS)
	w.Write(bss[:])
	var rc [4]byte
	binary.LittleEndian.PutUint32(rc[:], uint32(len(m.Relocs)))
	w.Write(rc[:])
	for _, r := range m.Relocs {
		var off [4]byte
		binary.LittleEndian.PutUint32(off[:], r.Offset)
		w.Write(off[:])
		putBytes(&w, []byte(r.Symbol))
	}
	return w.Bytes()
}

// Sign produces a signed module image.
func (m *Module) Sign(priv ed25519.PrivateKey) []byte {
	body := m.encodeBody()
	return append(body, ed25519.Sign(priv, body)...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	if r.off+4 > len(r.b) {
		r.err = ErrFormat
		return nil
	}
	n := int(binary.LittleEndian.Uint32(r.b[r.off:]))
	r.off += 4
	if n < 0 || r.off+n > len(r.b) {
		r.err = ErrFormat
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = ErrFormat
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// Parse decodes a signed image without verifying the signature (callers
// must Verify separately — parsing untrusted data is safe, acting on it is
// not).
func Parse(raw []byte) (*Module, error) {
	if len(raw) < len(Magic)+ed25519.SignatureSize || !bytes.Equal(raw[:len(Magic)], Magic) {
		return nil, ErrFormat
	}
	body := raw[:len(raw)-ed25519.SignatureSize]
	r := &reader{b: body, off: len(Magic)}
	m := &Module{}
	m.Name = string(r.bytes())
	m.Text = bytes.Clone(r.bytes())
	m.Data = bytes.Clone(r.bytes())
	m.BSS = r.u32()
	relocs := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if relocs > 1<<16 {
		return nil, ErrFormat
	}
	for i := uint32(0); i < relocs; i++ {
		off := r.u32()
		sym := string(r.bytes())
		if r.err != nil {
			return nil, r.err
		}
		if int(off)+8 > len(m.Text) {
			return nil, fmt.Errorf("%w: reloc %d outside text", ErrFormat, i)
		}
		m.Relocs = append(m.Relocs, Reloc{Offset: off, Symbol: sym})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrFormat)
	}
	return m, nil
}

// Verify checks the image signature against the module-signing key.
func Verify(pub ed25519.PublicKey, raw []byte) error {
	if len(raw) < ed25519.SignatureSize {
		return ErrFormat
	}
	body, sig := raw[:len(raw)-ed25519.SignatureSize], raw[len(raw)-ed25519.SignatureSize:]
	if !ed25519.Verify(pub, body, sig) {
		return ErrSignature
	}
	return nil
}

// Relocate patches text in place using the protected kernel symbol table.
// Every referenced symbol must resolve.
func Relocate(text []byte, relocs []Reloc, symtab map[string]uint64) error {
	for _, r := range relocs {
		addr, ok := symtab[r.Symbol]
		if !ok {
			return fmt.Errorf("%w: %q", ErrSymbol, r.Symbol)
		}
		if int(r.Offset)+8 > len(text) {
			return fmt.Errorf("%w: reloc at %d outside text", ErrFormat, r.Offset)
		}
		binary.LittleEndian.PutUint64(text[r.Offset:], addr)
	}
	return nil
}

// InstalledSize is the in-memory footprint of the module once loaded:
// text + data + BSS, each section page aligned (4 KiB).
func (m *Module) InstalledSize() int {
	const page = 4096
	align := func(n int) int { return (n + page - 1) &^ (page - 1) }
	return align(len(m.Text)) + align(len(m.Data)+int(m.BSS))
}

// TextPages returns how many 4 KiB pages the text section occupies.
func (m *Module) TextPages() int {
	const page = 4096
	return (len(m.Text) + page - 1) / page
}
