package vmod

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func testKey(seed byte) ed25519.PrivateKey {
	s := make([]byte, ed25519.SeedSize)
	for i := range s {
		s[i] = seed + byte(i)
	}
	return ed25519.NewKeyFromSeed(s)
}

func sampleModule() *Module {
	return &Module{
		Name: "veil_test",
		Text: bytes.Repeat([]byte{0x90}, 3000),
		Data: bytes.Repeat([]byte{0x01}, 800),
		BSS:  16 * 1024,
		Relocs: []Reloc{
			{Offset: 16, Symbol: "printk"},
			{Offset: 256, Symbol: "kmalloc"},
		},
	}
}

func TestSignParseVerifyRoundTrip(t *testing.T) {
	priv := testKey(1)
	raw := sampleModule().Sign(priv)
	if err := Verify(priv.Public().(ed25519.PublicKey), raw); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "veil_test" || len(m.Text) != 3000 || len(m.Data) != 800 || m.BSS != 16*1024 {
		t.Fatalf("parsed %+v", m)
	}
	if len(m.Relocs) != 2 || m.Relocs[1].Symbol != "kmalloc" {
		t.Fatalf("relocs %v", m.Relocs)
	}
}

func TestVerifyRejectsAnyBitFlip(t *testing.T) {
	priv := testKey(2)
	raw := sampleModule().Sign(priv)
	pub := priv.Public().(ed25519.PublicKey)
	for _, idx := range []int{0, 10, 100, len(raw) - ed25519.SignatureSize - 1, len(raw) - 1} {
		mut := bytes.Clone(raw)
		mut[idx] ^= 0x80
		if Verify(pub, mut) == nil {
			t.Fatalf("flip at %d accepted", idx)
		}
	}
}

func TestVerifyWrongKey(t *testing.T) {
	raw := sampleModule().Sign(testKey(3))
	other := testKey(4).Public().(ed25519.PublicKey)
	if err := Verify(other, raw); !errors.Is(err, ErrSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0xFF}, 200),
		append([]byte("VMOD1\x00"), bytes.Repeat([]byte{0xFF}, 100)...),
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("case %d parsed", i)
		}
	}
}

func TestParseRejectsRelocOutsideText(t *testing.T) {
	m := sampleModule()
	m.Relocs = []Reloc{{Offset: uint32(len(m.Text) - 4), Symbol: "printk"}}
	raw := m.Sign(testKey(5))
	if _, err := Parse(raw); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsTrailingBytes(t *testing.T) {
	raw := sampleModule().Sign(testKey(6))
	// Insert a byte before the signature.
	mut := append(bytes.Clone(raw[:len(raw)-ed25519.SignatureSize]), 0x00)
	mut = append(mut, raw[len(raw)-ed25519.SignatureSize:]...)
	if _, err := Parse(mut); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestRelocatePatchesSymbols(t *testing.T) {
	m := sampleModule()
	symtab := map[string]uint64{"printk": 0x1111, "kmalloc": 0x2222}
	text := bytes.Clone(m.Text)
	if err := Relocate(text, m.Relocs, symtab); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(text[16:]); got != 0x1111 {
		t.Fatalf("reloc 0 = %#x", got)
	}
	if got := binary.LittleEndian.Uint64(text[256:]); got != 0x2222 {
		t.Fatalf("reloc 1 = %#x", got)
	}
}

func TestRelocateUnresolvedSymbol(t *testing.T) {
	m := sampleModule()
	err := Relocate(bytes.Clone(m.Text), m.Relocs, map[string]uint64{"printk": 1})
	if !errors.Is(err, ErrSymbol) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstalledSizeMatchesCS1Module(t *testing.T) {
	// The paper's CS1 module: 4728-byte binary, 24 KiB installed.
	m := &Module{Name: "cs1", Text: make([]byte, 3000), Data: make([]byte, 1000), BSS: 16 * 1024}
	if got := m.InstalledSize(); got != 24*1024 {
		t.Fatalf("installed size = %d, want 24576", got)
	}
	if m.TextPages() != 1 {
		t.Fatalf("text pages = %d", m.TextPages())
	}
}

// Property: sign → parse round-trips arbitrary section contents exactly.
func TestRoundTripProperty(t *testing.T) {
	priv := testKey(7)
	f := func(name string, text, data []byte, bss uint16) bool {
		if len(name) > 200 {
			name = name[:200]
		}
		m := &Module{Name: name, Text: text, Data: data, BSS: uint32(bss)}
		got, err := Parse(m.Sign(priv))
		if err != nil {
			return false
		}
		return got.Name == name && bytes.Equal(got.Text, text) &&
			bytes.Equal(got.Data, data) && got.BSS == uint32(bss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
