package vmod

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

// FuzzParse throws arbitrary bytes at the module parser: it must never
// panic and must never "succeed" on input that then fails to re-encode to
// an equivalent module. Run with `go test -fuzz FuzzParse ./internal/vmod`
// for continuous fuzzing; the seed corpus runs in normal test mode.
func FuzzParse(f *testing.F) {
	priv := testKey(9)
	good := sampleModule().Sign(priv)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("VMOD1\x00"))
	f.Add(bytes.Repeat([]byte{0xFF}, 300))
	trunc := bytes.Clone(good[:len(good)/2])
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Parse(raw)
		if err != nil {
			return
		}
		// Anything that parses must round-trip through sign/parse.
		re := m.Sign(priv)
		m2, err := Parse(re)
		if err != nil {
			t.Fatalf("re-encoded module failed to parse: %v", err)
		}
		if m2.Name != m.Name || !bytes.Equal(m2.Text, m.Text) ||
			!bytes.Equal(m2.Data, m.Data) || m2.BSS != m.BSS {
			t.Fatal("parse/encode round trip diverged")
		}
		// Relocations stay inside the text.
		for _, r := range m2.Relocs {
			if int(r.Offset)+8 > len(m2.Text) {
				t.Fatalf("parser admitted out-of-text reloc %d", r.Offset)
			}
		}
	})
}

// FuzzVerify must never panic and never validate random bytes.
func FuzzVerify(f *testing.F) {
	priv := testKey(10)
	pub := priv.Public().(ed25519.PublicKey)
	good := sampleModule().Sign(priv)
	f.Add(good, true)
	f.Add([]byte("short"), false)

	f.Fuzz(func(t *testing.T, raw []byte, flip bool) {
		if flip && len(raw) > 0 {
			raw = bytes.Clone(raw)
			raw[len(raw)/2] ^= 1
		}
		err := Verify(pub, raw)
		if err == nil && !bytes.Equal(raw, good) {
			t.Fatal("verifier accepted forged bytes")
		}
	})
}
