// Package baselines models the alternative security-monitor designs the
// paper compares against in §9.1 ("Runtime monitor cost analysis"): the
// runtime cost of any monitor is the cost of a switch into it (C_ds)
// multiplied by how often it is invoked (N_ds), plus any ubiquitous
// software checks. The numbers below come from the paper's discussion and
// the systems it cites.
package baselines

import "veil/internal/snp"

// Monitor is one analytic monitor model.
type Monitor struct {
	Name string
	// SwitchCycles is C_ds: one entry into the monitor.
	SwitchCycles uint64
	// InvocationsPerSec is N_ds under a page-table-update-heavy server
	// workload (the regime the Nested Kernel paper reports 15–20%
	// bandwidth reduction in).
	InvocationsPerSec uint64
	// FlatOverheadPct is ubiquitous software-check overhead independent
	// of monitor invocations (compiler CFI + bounds checks).
	FlatOverheadPct float64
	// CVMCompatible: deployable inside a CVM without trusting the host.
	CVMCompatible bool
	// Confidentiality: can keep secrets from the OS (not just integrity).
	Confidentiality bool
	// Notes summarizes the §2/§9.1 trade-off.
	Notes string
}

// BackgroundOverheadPct is the §9.1 formula: C_ds × N_ds over the clock,
// plus flat software overhead.
func (m Monitor) BackgroundOverheadPct() float64 {
	return 100*float64(m.SwitchCycles)*float64(m.InvocationsPerSec)/float64(snp.SimClockHz) +
		m.FlatOverheadPct
}

// Models returns the §9.1 comparison set.
func Models() []Monitor {
	return []Monitor{
		{
			Name: "nested-kernel",
			// No ring switch, no VM exit: a guarded call, ~250 cycles.
			SwitchCycles: 250,
			// Invoked on every PT update / control-register write: a
			// write-heavy server does hundreds of thousands per second
			// (the reported 15-20% bandwidth reduction regime).
			InvocationsPerSec: 600_000,
			CVMCompatible:     true,
			Confidentiality:   false,
			Notes:             "integrity only (CR0.WP); cannot shield programs or keep channel keys",
		},
		{
			Name: "nested-kernel+unmap",
			// Read protection by unmapping adds a TLB flush per call.
			SwitchCycles:      250 + 2200,
			InvocationsPerSec: 600_000,
			CVMCompatible:     true,
			Confidentiality:   true,
			Notes:             "§2: confidentiality retrofit costs a TLB flush per invocation",
		},
		{
			Name: "compiler-cfi",
			// Virtual Ghost-class: software checks on loads/stores and
			// branches; 3.9× syscall latency, >50% on webservers.
			SwitchCycles:      0,
			InvocationsPerSec: 0,
			FlatOverheadPct:   50,
			CVMCompatible:     true,
			Confidentiality:   true,
			Notes:             "ubiquitous instrumentation; overhead even when services are unused",
		},
		{
			Name: "hypervisor-monitor",
			// BlackBox-class: half of Veil's switch (no second VMENTER
			// into a monitor VCPU context).
			SwitchCycles:      snp.CyclesDomainSwitch / 2,
			InvocationsPerSec: 50,
			CVMCompatible:     false,
			Confidentiality:   true,
			Notes:             "incompatible with CVMs: requires trusting the cloud provider",
		},
		{
			Name:         "veilmon",
			SwitchCycles: snp.CyclesDomainSwitch,
			// Invoked only for delegated functionality at runtime, which
			// is rare after boot (§9.1 background measurement).
			InvocationsPerSec: 50,
			CVMCompatible:     true,
			Confidentiality:   true,
			Notes:             "higher C_ds, very low N_ds; versatile read+write protection",
		},
	}
}

// CrossoverInvocationsPerSec solves for the invocation rate at which a
// monitor with the given switch cost reaches pct% background overhead —
// the ablation the DESIGN.md calls out for the C_ds/N_ds trade-off.
func CrossoverInvocationsPerSec(switchCycles uint64, pct float64) float64 {
	if switchCycles == 0 {
		return 0
	}
	return pct / 100 * float64(snp.SimClockHz) / float64(switchCycles)
}
