package baselines

import (
	"testing"

	"veil/internal/snp"
)

func models(t *testing.T) map[string]Monitor {
	t.Helper()
	out := map[string]Monitor{}
	for _, m := range Models() {
		out[m.Name] = m
	}
	return out
}

func TestComparisonSetComplete(t *testing.T) {
	ms := models(t)
	for _, name := range []string{
		"nested-kernel", "nested-kernel+unmap", "compiler-cfi",
		"hypervisor-monitor", "veilmon",
	} {
		if _, ok := ms[name]; !ok {
			t.Fatalf("missing monitor model %q", name)
		}
	}
}

func TestVeilTradeOffClaims(t *testing.T) {
	ms := models(t)
	veil := ms["veilmon"]
	nk := ms["nested-kernel"]
	nku := ms["nested-kernel+unmap"]
	hvm := ms["hypervisor-monitor"]
	cfi := ms["compiler-cfi"]

	// §9.1: Veil's C_ds is high but its N_ds is low, so background
	// overhead is negligible; software monitors pay constantly.
	if veil.SwitchCycles <= nk.SwitchCycles {
		t.Fatal("Veil's C_ds should exceed the Nested Kernel's")
	}
	if veil.BackgroundOverheadPct() >= nk.BackgroundOverheadPct() {
		t.Fatal("Veil's background overhead should be below the Nested Kernel's")
	}
	// §2: adding confidentiality to the Nested Kernel costs dearly.
	if nku.BackgroundOverheadPct() <= nk.BackgroundOverheadPct() {
		t.Fatal("confidentiality retrofit should cost more")
	}
	if !nku.Confidentiality || nk.Confidentiality {
		t.Fatal("confidentiality flags wrong")
	}
	// Compiler CFI pays even when idle.
	if cfi.BackgroundOverheadPct() < 40 {
		t.Fatal("compiler CFI should show heavy flat overhead")
	}
	// §9.1: hypervisor monitors halve C_ds but are not CVM-deployable.
	if hvm.SwitchCycles != snp.CyclesDomainSwitch/2 {
		t.Fatalf("hypervisor C_ds = %d, want half of Veil's", hvm.SwitchCycles)
	}
	if hvm.CVMCompatible {
		t.Fatal("hypervisor monitors must be CVM-incompatible")
	}
	if !veil.CVMCompatible || !veil.Confidentiality {
		t.Fatal("Veil must be CVM-compatible and confidential")
	}
	if veil.BackgroundOverheadPct() > 0.1 {
		t.Fatalf("Veil background = %.3f%%, should be negligible", veil.BackgroundOverheadPct())
	}
}

func TestCrossover(t *testing.T) {
	// At what invocation rate would Veil's switch cost 2% background?
	n := CrossoverInvocationsPerSec(snp.CyclesDomainSwitch, 2)
	if n < 2000 || n > 10000 {
		t.Fatalf("crossover = %.0f/s, expected a few thousand", n)
	}
	// Monotonic: cheaper switches push the crossover higher.
	if CrossoverInvocationsPerSec(snp.CyclesVMCALL, 2) <= n {
		t.Fatal("cheaper switch should allow more invocations")
	}
	if CrossoverInvocationsPerSec(0, 2) != 0 {
		t.Fatal("zero-cost switch edge case")
	}
}
