module veil

go 1.22
